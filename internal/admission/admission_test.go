package admission

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"funcdb/internal/obs"
)

// fakeClock is a manually advanced clock shared by a test and its
// controller.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestBucketRefillMath(t *testing.T) {
	b := bucket{rate: 10, burst: 20}
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

	// Starts full: 20 tokens cover cost 20 exactly.
	ok, _ := b.take(now, 20)
	if !ok {
		t.Fatal("full bucket refused its burst")
	}
	// Empty now; cost 5 needs 0.5s of refill → Retry-After rounds up to 1s.
	ok, retry := b.take(now, 5)
	if ok {
		t.Fatal("empty bucket admitted a request")
	}
	if retry != time.Second {
		t.Fatalf("retry = %v, want 1s (rounded up)", retry)
	}
	// After 1.5s the bucket holds 15 tokens: cost 15 passes, cost 1 fails.
	now = now.Add(1500 * time.Millisecond)
	ok, _ = b.take(now, 15)
	if !ok {
		t.Fatal("refilled bucket refused cost within its level")
	}
	ok, retry = b.take(now, 30)
	if ok {
		t.Fatal("bucket admitted more than its burst")
	}
	// 30 tokens at 10/s = 3s.
	if retry != 3*time.Second {
		t.Fatalf("retry = %v, want 3s", retry)
	}
	// Refill never exceeds burst.
	now = now.Add(time.Hour)
	if lvl := b.level(now); lvl != 20 {
		t.Fatalf("level after an hour = %v, want burst 20", lvl)
	}

	// A zero-rate bucket never refills: permanent refusal once drained.
	z := bucket{rate: 0, burst: 2}
	if ok, _ := z.take(now, 2); !ok {
		t.Fatal("zero-rate bucket refused its initial burst")
	}
	if ok, retry := z.take(now.Add(time.Hour), 1); ok || retry < time.Hour {
		t.Fatalf("zero-rate bucket: ok=%v retry=%v, want refusal with long retry", ok, retry)
	}
}

func TestAdmitRateLimitAndRecovery(t *testing.T) {
	clk := newFakeClock()
	c := New(Options{
		Concurrency: 4,
		Config: Config{Tenants: map[string]Limits{
			"slow": {Rate: 1, Burst: 2},
		}},
		Now: clk.now,
	})
	ctx := context.Background()

	// Burst of 2 admits 2; the third is rate-limited with Retry-After.
	for i := 0; i < 2; i++ {
		release, err := c.Admit(ctx, "slow", 1)
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		release()
	}
	_, err := c.Admit(ctx, "slow", 1)
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("err = %v, want ErrRateLimited", err)
	}
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Code != CodeRateLimited || shed.RetryAfter <= 0 {
		t.Fatalf("shed = %+v, want rate_limited with positive Retry-After", shed)
	}

	// Waiting out the Retry-After refills the bucket.
	clk.advance(shed.RetryAfter)
	release, err := c.Admit(ctx, "slow", 1)
	if err != nil {
		t.Fatalf("admit after Retry-After: %v", err)
	}
	release()

	// Unconfigured tenants fall back to the (here unlimited) default.
	for i := 0; i < 50; i++ {
		release, err := c.Admit(ctx, "other", 1)
		if err != nil {
			t.Fatalf("unlimited tenant refused: %v", err)
		}
		release()
	}
}

// TestQueueShedOrdering fills every slot and the whole waiting room, then
// proves the order of outcomes: arrivals past the waiting room are shed
// immediately with 503, earlier waiters run once slots free up, and waiters
// that outlive the queue timeout are shed with 503.
func TestQueueShedOrdering(t *testing.T) {
	c := New(Options{
		Concurrency:  2,
		QueueDepth:   2,
		QueueTimeout: 200 * time.Millisecond,
	})
	ctx := context.Background()

	// Occupy both slots.
	var hold []func()
	for i := 0; i < 2; i++ {
		release, err := c.Admit(ctx, "t", 1)
		if err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
		hold = append(hold, release)
	}

	// Two waiters fill the room.
	type outcome struct {
		release func()
		err     error
	}
	results := make(chan outcome, 2)
	for i := 0; i < 2; i++ {
		go func() {
			release, err := c.Admit(ctx, "t", 1)
			results <- outcome{release, err}
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for c.Waiting() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("waiting = %d, want 2", c.Waiting())
		}
		time.Sleep(time.Millisecond)
	}

	// The room is full: the next arrival is shed NOW, not after the timeout.
	start := time.Now()
	_, err := c.Admit(ctx, "t", 1)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow err = %v, want ErrOverloaded", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("overflow shed took %v, want immediate", d)
	}
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Code != CodeOverloaded || shed.RetryAfter <= 0 {
		t.Fatalf("shed = %+v, want overloaded with Retry-After", shed)
	}

	// Freeing one slot lets exactly one waiter through...
	hold[0]()
	first := <-results
	if first.err != nil {
		t.Fatalf("first waiter: %v", first.err)
	}
	// ...and the other times out with 503 (both held slots stay busy).
	second := <-results
	if !errors.Is(second.err, ErrOverloaded) {
		t.Fatalf("second waiter err = %v, want ErrOverloaded (timeout)", second.err)
	}
	first.release()
	hold[1]()
	if c.Waiting() != 0 || c.Inflight() != 0 {
		t.Fatalf("leaked state: waiting=%d inflight=%d", c.Waiting(), c.Inflight())
	}
}

func TestAdmitQueueCancel(t *testing.T) {
	c := New(Options{Concurrency: 1, QueueDepth: 4, QueueTimeout: time.Minute})
	release, err := c.Admit(context.Background(), "t", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Admit(ctx, "t", 1)
		done <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for c.Waiting() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestBudgetFromLimits(t *testing.T) {
	c := New(Options{Config: Config{
		Default: Limits{MaxQSteps: 100},
		Tenants: map[string]Limits{"free": {MaxQSteps: 10, MaxDepth: 3, MaxArenaBytes: 1 << 10}},
	}})
	b := c.Budget("free")
	if b == nil || b.MaxQSteps != 10 || b.MaxDepth != 3 || b.MaxBytes != 1<<10 {
		t.Fatalf("budget = %+v", b)
	}
	if err := b.AddQSteps(10); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	err := b.AddQSteps(1)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	var be *obs.BudgetError
	if !errors.As(err, &be) || be.Resource != "algoq_steps" {
		t.Fatalf("budget error = %+v", err)
	}
	if d := c.Budget("dflt"); d == nil || d.MaxQSteps != 100 {
		t.Fatalf("default budget = %+v", d)
	}
}

func TestHotReloadConfigFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tenants.json")
	write := func(s string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(s), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(`{"default": {"rate": 100, "burst": 100},
	        "tenants": {"a": {"rate": 1, "burst": 1}}}`)

	clk := newFakeClock()
	c := New(Options{Concurrency: 4, Now: clk.now})
	defer c.Close()
	if err := c.WatchFile(path, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Tenant "a": burst 1 → second request shed.
	if _, err := c.Admit(ctx, "a", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Admit(ctx, "a", 1); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("err = %v, want ErrRateLimited", err)
	}

	// Raise "a" to a generous burst; the poller must pick it up.
	write(`{"default": {"rate": 100, "burst": 100},
	        "tenants": {"a": {"rate": 100, "burst": 50}}}`)
	deadline := time.Now().Add(5 * time.Second)
	for {
		clk.advance(time.Second)
		if _, err := c.Admit(ctx, "a", 10); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("hot reload never took effect")
		}
		time.Sleep(10 * time.Millisecond)
	}

	if c.WatchCap("a") != 0 {
		t.Fatalf("watch cap = %d, want 0", c.WatchCap("a"))
	}
}

func TestLoadConfigFileErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"tenants": {"x": {"rate": -1}}}`), 0o644)
	if _, err := LoadConfigFile(bad); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("err = %v, want negative-rate validation error", err)
	}
	if _, err := LoadConfigFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file: want error")
	}
}

func TestMetricsRegistered(t *testing.T) {
	reg := obs.NewRegistry()
	clk := newFakeClock()
	c := New(Options{
		Reg:         reg,
		Concurrency: 1,
		Config: Config{Tenants: map[string]Limits{
			"a": {Rate: 1, Burst: 1},
		}},
		Now: clk.now,
	})
	ctx := context.Background()
	release, _ := c.Admit(ctx, "a", 1)
	release()
	if _, err := c.Admit(ctx, "a", 1); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("want rate limit, got %v", err)
	}
	c.RecordBudgetKill()
	c.RecordWatchShed()

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`funcdbd_admission_admitted_total 1`,
		`funcdbd_admission_sheds_total{reason="rate_limited"} 1`,
		`funcdbd_admission_sheds_total{reason="overloaded"} 0`,
		`funcdbd_admission_sheds_total{reason="watch_cap"} 1`,
		`funcdbd_admission_budget_kills_total 1`,
		`funcdbd_admission_queue_depth 0`,
		`funcdbd_admission_tokens{tenant="a"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
}
