package query

import (
	"strings"
	"testing"

	"funcdb/internal/engine"
	"funcdb/internal/facts"
	"funcdb/internal/parser"
	"funcdb/internal/rewrite"
	"funcdb/internal/specgraph"
	"funcdb/internal/symbols"
	"funcdb/internal/term"
)

const listsSrc = `
P(a).
P(b).
P(X) -> Member(ext(0, X), X).
P(Y), Member(S, X) -> Member(ext(S, Y), Y).
P(Y), Member(S, X) -> Member(ext(S, Y), X).
`

func buildSpec(t *testing.T, src string) *specgraph.Spec {
	t.Helper()
	prog := parser.MustParse(src).Program
	prep, err := rewrite.Prepare(prog)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	eng, err := engine.New(prep, term.NewUniverse(), facts.NewWorld(), engine.Options{})
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	sp, err := specgraph.Build(eng, specgraph.Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return sp
}

// TestPaperIncrementalQuery reproduces the section 5 example: the answer to
// ?- Member(S, a) over the list program has the incremental specification
// QUERY(a), QUERY(ab) with the successor mappings unchanged.
func TestPaperIncrementalQuery(t *testing.T) {
	sp := buildSpec(t, listsSrc)
	prog := sp.Eng.Prep.Program
	q, err := parser.ParseQuery(sp.Eng.Prep.Original, `?- Member(S, a).`)
	if err != nil {
		t.Fatalf("ParseQuery: %v", err)
	}
	if !IsUniform(q) {
		t.Fatalf("Member(S, a) is uniform")
	}
	ans, err := Incremental(sp, q)
	if err != nil {
		t.Fatalf("Incremental: %v", err)
	}
	tab := prog.Tab
	extA, _ := tab.LookupFunc("ext'a", 0)
	extB, _ := tab.LookupFunc("ext'b", 0)
	u := sp.U
	a := u.Apply(extA, term.Zero)
	b := u.Apply(extB, term.Zero)
	ab := u.Apply(extB, a)

	if len(ans.TuplesAt(a)) != 1 || len(ans.TuplesAt(ab)) != 1 {
		t.Errorf("QUERY(a) and QUERY(ab) expected:\n%s", ans.Dump())
	}
	if len(ans.TuplesAt(b)) != 0 || len(ans.TuplesAt(term.Zero)) != 0 {
		t.Errorf("no QUERY tuples expected at b or 0:\n%s", ans.Dump())
	}
	// Membership of deep answers: the list bba contains a; bb does not.
	bba := u.ApplyString(term.Zero, extB, extB, extA)
	bb := u.ApplyString(term.Zero, extB, extB)
	if ok, _ := ans.Contains(bba, nil); !ok {
		t.Errorf("bba should be an answer")
	}
	if ok, _ := ans.Contains(bb, nil); ok {
		t.Errorf("bb should not be an answer")
	}
	dump := ans.Dump()
	if !strings.Contains(dump, "QUERY(ext'a)") || !strings.Contains(dump, "QUERY(ext'a.ext'b)") {
		t.Errorf("Dump missing paper's tuples:\n%s", dump)
	}
}

// TestIncrementalMatchesRecompute checks Theorem 5.1: for uniform queries
// the incremental specification represents the same answer set as the
// recomputed one.
func TestIncrementalMatchesRecompute(t *testing.T) {
	cases := []struct {
		src     string
		queries []string
	}{
		{listsSrc, []string{`?- Member(S, a).`, `?- Member(S, X).`, `?- Member(S, a), Member(S, b).`}},
		{`
Meets(0, tony).
Next(tony, jan).
Next(jan, tony).
Meets(T, X), Next(X, Y) -> Meets(T+1, Y).
`, []string{`?- Meets(T, tony).`, `?- Meets(T, X), Next(X, Y).`}},
	}
	for _, tc := range cases {
		sp := buildSpec(t, tc.src)
		for _, qs := range tc.queries {
			q, err := parser.ParseQuery(sp.Eng.Prep.Original, qs)
			if err != nil {
				t.Fatalf("ParseQuery(%s): %v", qs, err)
			}
			inc, err := Incremental(sp, q)
			if err != nil {
				t.Fatalf("Incremental(%s): %v", qs, err)
			}
			rec, err := Recompute(sp.Eng.Prep.Original, q, engine.Options{}, specgraph.Options{})
			if err != nil {
				t.Fatalf("Recompute(%s): %v", qs, err)
			}
			// Compare by enumeration to depth 5 (distinct universes, so
			// compare printed forms).
			encode := func(a *Answers) map[string]bool {
				out := make(map[string]bool)
				tab := a.Spec.Eng.Prep.Program.Tab
				err := a.Enumerate(5, func(ft term.Term, args []symbols.ConstID) bool {
					key := ""
					if ft != term.None {
						key = a.Spec.U.CompactString(ft, tab)
					}
					for _, c := range args {
						key += "|" + tab.ConstName(c)
					}
					out[key] = true
					return true
				})
				if err != nil {
					t.Fatalf("Enumerate: %v", err)
				}
				return out
			}
			gi, gr := encode(inc), encode(rec)
			if len(gi) != len(gr) {
				t.Errorf("%s: incremental %d answers, recompute %d answers", qs, len(gi), len(gr))
				continue
			}
			for k := range gi {
				if !gr[k] {
					t.Errorf("%s: answer %q only in incremental", qs, k)
				}
			}
		}
	}
}

func TestNonUniformQueryRecompute(t *testing.T) {
	// Member(ext(S, a), b): the functional term has an application above
	// the variable, so the query is not uniform. The answer: lists S such
	// that S extended by a contains b, i.e. S already contains b.
	sp := buildSpec(t, listsSrc)
	q, err := parser.ParseQuery(sp.Eng.Prep.Original, `?- Member(ext(S, a), b).`)
	if err != nil {
		t.Fatalf("ParseQuery: %v", err)
	}
	if IsUniform(q) {
		t.Fatalf("query should not be uniform")
	}
	if _, err := Incremental(sp, q); err == nil {
		t.Fatalf("Incremental must reject non-uniform queries")
	}
	ans, err := Recompute(sp.Eng.Prep.Original, q, engine.Options{}, specgraph.Options{})
	if err != nil {
		t.Fatalf("Recompute: %v", err)
	}
	tab := ans.Spec.Eng.Prep.Program.Tab
	extA, _ := tab.LookupFunc("ext'a", 0)
	extB, _ := tab.LookupFunc("ext'b", 0)
	u := ans.Spec.U
	bList := u.Apply(extB, term.Zero)
	aList := u.Apply(extA, term.Zero)
	if ok, _ := ans.Contains(bList, nil); !ok {
		t.Errorf("S = [b] should be an answer")
	}
	if ok, _ := ans.Contains(aList, nil); ok {
		t.Errorf("S = [a] should not be an answer")
	}
	if ok, _ := ans.Contains(term.Zero, nil); ok {
		t.Errorf("S = [] should not be an answer")
	}
}

func TestExistentialFunctionalVariable(t *testing.T) {
	// ?- Member(_S, X): which elements occur in some list? Both a and b.
	sp := buildSpec(t, listsSrc)
	q, err := parser.ParseQuery(sp.Eng.Prep.Original, `?- Member(_S, X).`)
	if err != nil {
		t.Fatalf("ParseQuery: %v", err)
	}
	ans, err := Incremental(sp, q)
	if err != nil {
		t.Fatalf("Incremental: %v", err)
	}
	if ans.HasFunctionalAnswers() {
		t.Fatalf("answers should be purely non-functional")
	}
	tab := sp.Eng.Prep.Program.Tab
	aC, _ := tab.LookupConst("a")
	bC, _ := tab.LookupConst("b")
	if ok, _ := ans.Contains(term.None, []symbols.ConstID{aC}); !ok {
		t.Errorf("X = a expected")
	}
	if ok, _ := ans.Contains(term.None, []symbols.ConstID{bC}); !ok {
		t.Errorf("X = b expected")
	}
	n := 0
	if err := ans.Enumerate(0, func(ft term.Term, args []symbols.ConstID) bool {
		n++
		return true
	}); err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	if n != 2 {
		t.Errorf("enumerated %d answers, want 2", n)
	}
}

func TestEnumerateOrderAndCutoff(t *testing.T) {
	sp := buildSpec(t, listsSrc)
	q, err := parser.ParseQuery(sp.Eng.Prep.Original, `?- Member(S, a).`)
	if err != nil {
		t.Fatalf("ParseQuery: %v", err)
	}
	ans, err := Incremental(sp, q)
	if err != nil {
		t.Fatalf("Incremental: %v", err)
	}
	var depths []int
	if err := ans.Enumerate(3, func(ft term.Term, args []symbols.ConstID) bool {
		depths = append(depths, sp.U.Depth(ft))
		return true
	}); err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	if len(depths) == 0 {
		t.Fatalf("no answers enumerated")
	}
	for i := 1; i < len(depths); i++ {
		if depths[i] < depths[i-1] {
			t.Errorf("enumeration not in precedence order")
		}
	}
	for _, d := range depths {
		if d > 3 {
			t.Errorf("answer deeper than cutoff: %d", d)
		}
	}
	// Early stop.
	count := 0
	if err := ans.Enumerate(3, func(term.Term, []symbols.ConstID) bool {
		count++
		return count < 2
	}); err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	if count != 2 {
		t.Errorf("early stop ignored: %d", count)
	}
}

func TestQueryWithGroundTerm(t *testing.T) {
	// Does the specific list [a] have member X? Only X = a.
	sp := buildSpec(t, listsSrc)
	q, err := parser.ParseQuery(sp.Eng.Prep.Original, `?- Member(ext(0, a), X).`)
	if err != nil {
		t.Fatalf("ParseQuery: %v", err)
	}
	// Ground mixed terms are not uniform for our builder until eliminated;
	// Recompute handles them.
	ans, err := Recompute(sp.Eng.Prep.Original, q, engine.Options{}, specgraph.Options{})
	if err != nil {
		t.Fatalf("Recompute: %v", err)
	}
	tab := ans.Spec.Eng.Prep.Program.Tab
	aC, _ := tab.LookupConst("a")
	bC, _ := tab.LookupConst("b")
	if ok, _ := ans.Contains(term.None, []symbols.ConstID{aC}); !ok {
		t.Errorf("X = a expected")
	}
	if ok, _ := ans.Contains(term.None, []symbols.ConstID{bC}); ok {
		t.Errorf("X = b not expected")
	}
}
