// Package query implements section 5: finite relational specifications of
// infinite query answers.
//
// A functional query is a positive conjunction of atoms with at most one
// functional variable. Answers are represented against a graph
// specification in one of two ways:
//
//   - Incremental (Theorem 5.1): for uniform queries — those whose only
//     non-ground functional term is the bare variable — the query is simply
//     evaluated against every slice of the primary database, yielding
//     (Q(B), T) with the successor mappings unchanged.
//   - Recompute: for arbitrary queries, a fresh QUERY rule is added to the
//     rule set and the specification of the enlarged program is built.
//
// Either way the result is an Answers value: a finite object that decides
// membership of any ground answer tuple and enumerates the answer set to
// any term depth.
package query

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"funcdb/internal/ast"
	"funcdb/internal/engine"
	"funcdb/internal/facts"
	"funcdb/internal/rewrite"
	"funcdb/internal/specgraph"
	"funcdb/internal/subst"
	"funcdb/internal/symbols"
	"funcdb/internal/term"
)

// IsUniform reports whether every functional term of the query is either
// ground (and free of mixed symbols, so it can be interned directly) or the
// bare functional variable (no applications above it). Ground terms with
// mixed symbols are handled by Recompute, whose preparation pipeline
// eliminates them.
func IsUniform(q *ast.Query) bool {
	for i := range q.Atoms {
		ft := q.Atoms[i].FT
		if ft == nil {
			continue
		}
		if ft.IsGround() {
			pure := true
			for _, app := range ft.Apps {
				if len(app.Args) != 0 {
					pure = false
				}
			}
			if pure {
				continue
			}
			return false
		}
		if ft.HasVarBase() && len(ft.Apps) == 0 {
			continue
		}
		return false
	}
	return true
}

// FunctionalVar returns the query's functional variable, if any.
func FunctionalVar(q *ast.Query) (symbols.VarID, bool) {
	for i := range q.Atoms {
		ft := q.Atoms[i].FT
		if ft != nil && ft.HasVarBase() {
			return ft.Base, true
		}
	}
	return symbols.NoVar, false
}

// Answers is a finite relational specification of a (possibly infinite)
// query answer.
type Answers struct {
	Query *ast.Query
	Spec  *specgraph.Spec
	// Free lists the answer variables; FnVar is the functional one among
	// them (NoVar if the answer tuples are purely non-functional).
	Free  []symbols.VarID
	FnVar symbols.VarID

	dataFree []symbols.VarID // Free minus FnVar, in order
	// perRep[rep] holds the data-variable bindings of answers whose
	// functional component falls in rep's cluster. For queries without a
	// functional variable everything is keyed under term.None.
	perRep map[term.Term][]facts.TupleID
	seen   map[repTuple]bool
	// mu, when set via Guard, is held by the methods that intern into the
	// shared universe or world (Contains, Enumerate, Dump).
	mu *sync.Mutex
}

// Guard installs mu as the lock protecting the specification's shared
// universe and world. core.Database passes its own mutex so that Answers
// values are safe for concurrent use alongside other queries on the same
// database; Answers built directly by Incremental/Recompute have no guard
// and are single-goroutine.
func (a *Answers) Guard(mu *sync.Mutex) { a.mu = mu }

func (a *Answers) lock() {
	if a.mu != nil {
		a.mu.Lock()
	}
}

func (a *Answers) unlock() {
	if a.mu != nil {
		a.mu.Unlock()
	}
}

type repTuple struct {
	rep term.Term
	tu  facts.TupleID
}

func newAnswers(q *ast.Query, sp *specgraph.Spec) *Answers {
	a := &Answers{
		Query:  q,
		Spec:   sp,
		Free:   q.Free,
		FnVar:  symbols.NoVar,
		perRep: make(map[term.Term][]facts.TupleID),
		seen:   make(map[repTuple]bool),
	}
	if v, ok := FunctionalVar(q); ok {
		for _, f := range q.Free {
			if f == v {
				a.FnVar = v
			}
		}
	}
	for _, f := range q.Free {
		if f != a.FnVar {
			a.dataFree = append(a.dataFree, f)
		}
	}
	return a
}

func (a *Answers) add(rep term.Term, tu facts.TupleID) {
	key := repTuple{rep, tu}
	if a.seen[key] {
		return
	}
	a.seen[key] = true
	a.perRep[rep] = append(a.perRep[rep], tu)
}

// Incremental evaluates a uniform query against each slice of the primary
// database (Theorem 5.1). The successor mappings of the underlying
// specification are reused unchanged.
func Incremental(sp *specgraph.Spec, q *ast.Query) (*Answers, error) {
	if !IsUniform(q) {
		return nil, fmt.Errorf("query: %s is not uniform; use Recompute", q.Format(sp.Eng.Prep.Program.Tab))
	}
	a := newAnswers(q, sp)
	fnVar, hasFn := FunctionalVar(q)
	freeFn := a.FnVar != symbols.NoVar

	eval := func(rep term.Term) error {
		var b subst.Binding
		if hasFn {
			b.BindTerm(fnVar, rep)
		}
		return a.matchConj(q.Atoms, 0, &b, func(b *subst.Binding) {
			key := term.None
			if freeFn {
				key = rep
			}
			a.add(key, a.dataTuple(b))
		})
	}
	if hasFn {
		// An existential functional variable still ranges over every
		// cluster: one evaluation per representative covers all terms.
		for _, rep := range sp.Reps {
			if err := eval(rep); err != nil {
				return nil, err
			}
		}
	} else {
		if err := eval(term.None); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// dataTuple interns the bindings of the non-functional free variables.
func (a *Answers) dataTuple(b *subst.Binding) facts.TupleID {
	consts := make([]symbols.ConstID, len(a.dataFree))
	for i, v := range a.dataFree {
		c, _ := b.Const(v)
		consts[i] = c
	}
	return a.Spec.W.Tuple(consts)
}

// matchConj joins the query atoms against the specification under b.
func (a *Answers) matchConj(atoms []ast.Atom, i int, b *subst.Binding, yield func(*subst.Binding)) error {
	if i == len(atoms) {
		yield(b)
		return nil
	}
	at := &atoms[i]
	w := a.Spec.W
	if at.FT == nil {
		// Non-functional atom: read the global facts.
		for _, f := range a.Spec.Eng.Global().ByPred(at.Pred) {
			nc, nt := b.Mark()
			if matchTuple(w, at.Args, f, b) {
				if err := a.matchConj(atoms, i+1, b, yield); err != nil {
					return err
				}
			}
			b.Undo(nc, nt)
		}
		return nil
	}
	// Functional atom: resolve the term to a representative slice.
	var rep term.Term
	if at.FT.IsGround() {
		t, ok := subst.GroundFTerm(a.Spec.U, at.FT)
		if !ok {
			return fmt.Errorf("query: mixed ground term in query; eliminate first")
		}
		r, err := a.Spec.Representative(t)
		if err != nil {
			return err
		}
		rep = r
	} else {
		t, ok := b.Term(at.FT.Base)
		if !ok {
			return fmt.Errorf("query: unbound functional variable")
		}
		rep = t
	}
	st := a.Spec.StateOfRep(rep)
	for _, f := range w.StateAtoms(st) {
		if w.AtomPred(f) != at.Pred {
			continue
		}
		nc, nt := b.Mark()
		if matchTuple(w, at.Args, f, b) {
			if err := a.matchConj(atoms, i+1, b, yield); err != nil {
				return err
			}
		}
		b.Undo(nc, nt)
	}
	return nil
}

func matchTuple(w *facts.World, pats []ast.DTerm, f facts.AtomID, b *subst.Binding) bool {
	args := w.TupleArgs(w.AtomTuple(f))
	if len(args) != len(pats) {
		return false
	}
	for i, p := range pats {
		if !b.MatchData(p, args[i]) {
			return false
		}
	}
	return true
}

// Recompute adds a QUERY rule for q to the original program and builds the
// specification of the enlarged program. It handles arbitrary functional
// queries, including non-uniform ones.
func Recompute(prog *ast.Program, q *ast.Query, engOpts engine.Options, specOpts specgraph.Options) (*Answers, error) {
	enlarged := prog.Clone()
	fnVar, hasFn := FunctionalVar(q)
	freeFn := false
	if hasFn {
		for _, v := range q.Free {
			if v == fnVar {
				freeFn = true
			}
		}
	}

	var head ast.Atom
	var dataFree []symbols.VarID
	for _, v := range q.Free {
		if !hasFn || v != fnVar {
			dataFree = append(dataFree, v)
		}
	}
	if freeFn {
		p := enlarged.Tab.FreshPred("QUERY", len(dataFree), true)
		head = ast.Atom{Pred: p, FT: ast.FVar(fnVar)}
	} else {
		p := enlarged.Tab.FreshPred("QUERY", len(dataFree), false)
		head = ast.Atom{Pred: p}
	}
	for _, v := range dataFree {
		head.Args = append(head.Args, ast.V(v))
	}
	rule := ast.Rule{Head: head, Body: q.Atoms}
	if !rule.IsRangeRestricted() {
		return nil, fmt.Errorf("query: free variables must occur in the query body")
	}
	enlarged.Rules = append(enlarged.Rules, rule)

	prep, err := rewrite.Prepare(enlarged)
	if err != nil {
		return nil, err
	}
	eng, err := engine.New(prep, term.NewUniverse(), facts.NewWorld(), engOpts)
	if err != nil {
		return nil, err
	}
	sp, err := specgraph.Build(eng, specOpts)
	if err != nil {
		return nil, err
	}

	a := newAnswers(q, sp)
	w := sp.W
	if freeFn {
		for _, rep := range sp.Reps {
			st := sp.StateOfRep(rep)
			for _, f := range w.StateAtoms(st) {
				if w.AtomPred(f) == head.Pred {
					a.add(rep, w.AtomTuple(f))
				}
			}
		}
	} else {
		for _, f := range eng.Global().ByPred(head.Pred) {
			a.add(term.None, w.AtomTuple(f))
		}
	}
	return a, nil
}

// HasFunctionalAnswers reports whether answer tuples carry a functional
// component.
func (a *Answers) HasFunctionalAnswers() bool { return a.FnVar != symbols.NoVar }

// Contains decides whether the ground tuple (ft, dataArgs) — dataArgs in
// the order of the non-functional free variables — belongs to the answer.
// For answers without a functional component pass term.None.
func (a *Answers) Contains(ft term.Term, dataArgs []symbols.ConstID) (bool, error) {
	a.lock()
	defer a.unlock()
	tu := a.Spec.W.Tuple(dataArgs)
	key := term.None
	if a.HasFunctionalAnswers() {
		rep, err := a.Spec.Representative(ft)
		if err != nil {
			return false, err
		}
		key = rep
	}
	return a.seen[repTuple{key, tu}], nil
}

// IsEmpty reports whether the answer set is empty.
func (a *Answers) IsEmpty() bool { return len(a.seen) == 0 }

// TuplesAt returns the data tuples whose functional component falls in
// rep's cluster.
func (a *Answers) TuplesAt(rep term.Term) []facts.TupleID { return a.perRep[rep] }

// Enumerate yields ground answers with functional components of depth at
// most maxDepth, in precedence order of the functional component. For
// purely non-functional answers it yields each tuple once with term.None.
// It stops early when yield returns false.
func (a *Answers) Enumerate(maxDepth int, yield func(ft term.Term, dataArgs []symbols.ConstID) bool) error {
	a.lock()
	defer a.unlock()
	w := a.Spec.W
	if !a.HasFunctionalAnswers() {
		for _, tu := range a.perRep[term.None] {
			if !yield(term.None, w.TupleArgs(tu)) {
				return nil
			}
		}
		return nil
	}
	u := a.Spec.U
	level := []term.Term{term.Zero}
	for d := 0; d <= maxDepth; d++ {
		for _, t := range level {
			rep, err := a.Spec.Representative(t)
			if err != nil {
				return err
			}
			for _, tu := range a.perRep[rep] {
				if !yield(t, w.TupleArgs(tu)) {
					return nil
				}
			}
		}
		if d == maxDepth {
			break
		}
		var next []term.Term
		for _, t := range level {
			for _, f := range a.Spec.Alphabet {
				next = append(next, u.Apply(f, t))
			}
		}
		level = next
	}
	return nil
}

// Dump renders the answer specification: the QUERY extension per
// representative (the incremental primary database Q(B)).
func (a *Answers) Dump() string {
	a.lock()
	defer a.unlock()
	tab := a.Spec.Eng.Prep.Program.Tab
	var b strings.Builder
	fmt.Fprintf(&b, "answer specification for %s\n", a.Query.Format(tab))
	if !a.HasFunctionalAnswers() {
		for _, tu := range a.perRep[term.None] {
			b.WriteString("  QUERY(")
			writeArgs(&b, a.Spec.W, tab, tu)
			b.WriteString(")\n")
		}
		return b.String()
	}
	reps := make([]term.Term, 0, len(a.perRep))
	for r := range a.perRep {
		reps = append(reps, r)
	}
	sort.Slice(reps, func(i, j int) bool { return a.Spec.U.Compare(reps[i], reps[j]) < 0 })
	for _, r := range reps {
		for _, tu := range a.perRep[r] {
			fmt.Fprintf(&b, "  QUERY(%s", a.Spec.U.CompactString(r, tab))
			if len(a.Spec.W.TupleArgs(tu)) > 0 {
				b.WriteString(", ")
				writeArgs(&b, a.Spec.W, tab, tu)
			}
			b.WriteString(")\n")
		}
	}
	return b.String()
}

func writeArgs(b *strings.Builder, w *facts.World, tab *symbols.Table, tu facts.TupleID) {
	for i, c := range w.TupleArgs(tu) {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(tab.ConstName(c))
	}
}
