// Package query implements section 5: finite relational specifications of
// infinite query answers.
//
// A functional query is a positive conjunction of atoms with at most one
// functional variable. Answers are represented against a graph
// specification in one of two ways:
//
//   - Incremental (Theorem 5.1): for uniform queries — those whose only
//     non-ground functional term is the bare variable — the query is simply
//     evaluated against every slice of the primary database, yielding
//     (Q(B), T) with the successor mappings unchanged.
//   - Recompute: for arbitrary queries, a fresh QUERY rule is added to the
//     rule set and the specification of the enlarged program is built.
//
// Either way the result is an Answers value: a finite object that decides
// membership of any ground answer tuple and enumerates the answer set to
// any term depth.
//
// Evaluation is written against the Backend interface, so the same code
// runs on a live *specgraph.Spec (under the owning database's lock) and on
// a frozen snapshot read through per-query scratch overlays (lock-free).
package query

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"funcdb/internal/ast"
	"funcdb/internal/engine"
	"funcdb/internal/facts"
	"funcdb/internal/obs"
	"funcdb/internal/rewrite"
	"funcdb/internal/specgraph"
	"funcdb/internal/subst"
	"funcdb/internal/symbols"
	"funcdb/internal/term"
)

// ErrUnsafeQuery reports a query whose free variables do not all occur in
// the body: its answer would be domain-dependent.
var ErrUnsafeQuery = errors.New("query: free variables must occur in the query body")

// Backend is the evaluation surface a query runs against: terms, facts and
// names plus the specification's successor structure. *specgraph.Spec
// implements it directly (live, mutable, caller holds the lock); core builds
// per-query frozen backends over immutable snapshots (lock-free).
type Backend interface {
	// Terms is the term universe view (live universe or scratch overlay).
	Terms() term.View
	// Facts is the fact-world view (live world or scratch overlay).
	Facts() facts.WorldView
	// Names resolves symbol identifiers for rendering.
	Names() symbols.Namer
	// AlphabetFns is the successor alphabet, ascending.
	AlphabetFns() []symbols.FuncID
	// RepTerms lists the representative terms in precedence order.
	RepTerms() []term.Term
	// Representative runs the successor DFA on t.
	Representative(t term.Term) (term.Term, error)
	// RepStateAtoms returns the atoms of rep's slice (the state B[rep]).
	RepStateAtoms(rep term.Term) []facts.AtomID
	// GlobalByPred returns the non-functional facts of predicate p.
	GlobalByPred(p symbols.PredID) []facts.AtomID
}

// IsUniform reports whether every functional term of the query is either
// ground (and free of mixed symbols, so it can be interned directly) or the
// bare functional variable (no applications above it). Ground terms with
// mixed symbols are handled by Recompute, whose preparation pipeline
// eliminates them.
func IsUniform(q *ast.Query) bool {
	for i := range q.Atoms {
		ft := q.Atoms[i].FT
		if ft == nil {
			continue
		}
		if ft.IsGround() {
			pure := true
			for _, app := range ft.Apps {
				if len(app.Args) != 0 {
					pure = false
				}
			}
			if pure {
				continue
			}
			return false
		}
		if ft.HasVarBase() && len(ft.Apps) == 0 {
			continue
		}
		return false
	}
	return true
}

// FunctionalVar returns the query's functional variable, if any.
func FunctionalVar(q *ast.Query) (symbols.VarID, bool) {
	for i := range q.Atoms {
		ft := q.Atoms[i].FT
		if ft != nil && ft.HasVarBase() {
			return ft.Base, true
		}
	}
	return symbols.NoVar, false
}

// Answers is a finite relational specification of a (possibly infinite)
// query answer.
type Answers struct {
	Query *ast.Query
	// Spec is the underlying live graph specification, when the answer was
	// built against one; answers built against a frozen snapshot leave it
	// nil and evaluate through the backend alone.
	Spec *specgraph.Spec
	// Free lists the answer variables; FnVar is the functional one among
	// them (NoVar if the answer tuples are purely non-functional).
	Free  []symbols.VarID
	FnVar symbols.VarID

	be Backend

	dataFree []symbols.VarID // Free minus FnVar, in order
	// perRep[rep] holds the data-variable bindings of answers whose
	// functional component falls in rep's cluster. For queries without a
	// functional variable everything is keyed under term.None.
	perRep map[term.Term][]facts.TupleID
	seen   map[repTuple]bool
	// mu, when set via Guard, is held by the methods that intern into the
	// shared universe or world (Contains, Enumerate, Dump).
	mu *sync.Mutex
}

// Guard installs mu as the lock protecting the specification's shared
// universe and world. core.Database passes its own mutex for answers on the
// live specification; for answers on a frozen snapshot it passes a fresh
// mutex serializing the query-local scratch overlays. Answers built
// directly by Incremental/Recompute have no guard and are single-goroutine.
func (a *Answers) Guard(mu *sync.Mutex) { a.mu = mu }

func (a *Answers) lock() {
	if a.mu != nil {
		a.mu.Lock()
	}
}

func (a *Answers) unlock() {
	if a.mu != nil {
		a.mu.Unlock()
	}
}

type repTuple struct {
	rep term.Term
	tu  facts.TupleID
}

func newAnswers(q *ast.Query, be Backend) *Answers {
	a := &Answers{
		Query:  q,
		be:     be,
		Free:   q.Free,
		FnVar:  symbols.NoVar,
		perRep: make(map[term.Term][]facts.TupleID),
		seen:   make(map[repTuple]bool),
	}
	if sp, ok := be.(*specgraph.Spec); ok {
		a.Spec = sp
	}
	if v, ok := FunctionalVar(q); ok {
		for _, f := range q.Free {
			if f == v {
				a.FnVar = v
			}
		}
	}
	for _, f := range q.Free {
		if f != a.FnVar {
			a.dataFree = append(a.dataFree, f)
		}
	}
	return a
}

func (a *Answers) add(rep term.Term, tu facts.TupleID) {
	key := repTuple{rep, tu}
	if a.seen[key] {
		return
	}
	a.seen[key] = true
	a.perRep[rep] = append(a.perRep[rep], tu)
}

// answerTupleBytes is the metered answer-arena cost of one accumulated
// answer tuple: a seen-set entry plus a perRep slice slot.
const answerTupleBytes = 48

// chargeAnswers bills n newly accumulated answer tuples against the work
// budget carried by ctx, if any.
func chargeAnswers(ctx context.Context, n int) error {
	if n <= 0 {
		return nil
	}
	return obs.BudgetFrom(ctx).AddBytes(int64(n) * answerTupleBytes)
}

// Incremental evaluates a uniform query against each slice of the primary
// database (Theorem 5.1). The successor mappings of the underlying
// specification are reused unchanged.
func Incremental(sp *specgraph.Spec, q *ast.Query) (*Answers, error) {
	return IncrementalContext(context.Background(), sp, q)
}

// IncrementalContext is Incremental against an arbitrary backend, checking
// ctx between representative evaluations.
func IncrementalContext(ctx context.Context, be Backend, q *ast.Query) (*Answers, error) {
	if !IsUniform(q) {
		return nil, fmt.Errorf("query: %s is not uniform; use Recompute", q.Format(be.Names()))
	}
	a := newAnswers(q, be)
	fnVar, hasFn := FunctionalVar(q)
	freeFn := a.FnVar != symbols.NoVar

	eval := func(rep term.Term) error {
		var b subst.Binding
		if hasFn {
			b.BindTerm(fnVar, rep)
		}
		return a.matchConj(q.Atoms, 0, &b, func(b *subst.Binding) {
			key := term.None
			if freeFn {
				key = rep
			}
			a.add(key, a.dataTuple(b))
		})
	}
	if hasFn {
		// An existential functional variable still ranges over every
		// cluster: one evaluation per representative covers all terms.
		prev := 0
		for _, rep := range be.RepTerms() {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := eval(rep); err != nil {
				return nil, err
			}
			if err := chargeAnswers(ctx, len(a.seen)-prev); err != nil {
				return nil, err
			}
			prev = len(a.seen)
		}
	} else {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := eval(term.None); err != nil {
			return nil, err
		}
		if err := chargeAnswers(ctx, len(a.seen)); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// dataTuple interns the bindings of the non-functional free variables.
func (a *Answers) dataTuple(b *subst.Binding) facts.TupleID {
	consts := make([]symbols.ConstID, len(a.dataFree))
	for i, v := range a.dataFree {
		c, _ := b.Const(v)
		consts[i] = c
	}
	return a.be.Facts().Tuple(consts)
}

// matchConj joins the query atoms against the specification under b.
func (a *Answers) matchConj(atoms []ast.Atom, i int, b *subst.Binding, yield func(*subst.Binding)) error {
	if i == len(atoms) {
		yield(b)
		return nil
	}
	at := &atoms[i]
	w := a.be.Facts()
	if at.FT == nil {
		// Non-functional atom: read the global facts.
		for _, f := range a.be.GlobalByPred(at.Pred) {
			nc, nt := b.Mark()
			if matchTuple(w, at.Args, f, b) {
				if err := a.matchConj(atoms, i+1, b, yield); err != nil {
					return err
				}
			}
			b.Undo(nc, nt)
		}
		return nil
	}
	// Functional atom: resolve the term to a representative slice.
	var rep term.Term
	if at.FT.IsGround() {
		t, ok := subst.GroundFTerm(a.be.Terms(), at.FT)
		if !ok {
			return fmt.Errorf("query: mixed ground term in query; eliminate first")
		}
		r, err := a.be.Representative(t)
		if err != nil {
			return err
		}
		rep = r
	} else {
		t, ok := b.Term(at.FT.Base)
		if !ok {
			return fmt.Errorf("query: unbound functional variable")
		}
		rep = t
	}
	for _, f := range a.be.RepStateAtoms(rep) {
		if w.AtomPred(f) != at.Pred {
			continue
		}
		nc, nt := b.Mark()
		if matchTuple(w, at.Args, f, b) {
			if err := a.matchConj(atoms, i+1, b, yield); err != nil {
				return err
			}
		}
		b.Undo(nc, nt)
	}
	return nil
}

func matchTuple(w facts.WorldView, pats []ast.DTerm, f facts.AtomID, b *subst.Binding) bool {
	args := w.TupleArgs(w.AtomTuple(f))
	if len(args) != len(pats) {
		return false
	}
	for i, p := range pats {
		if !b.MatchData(p, args[i]) {
			return false
		}
	}
	return true
}

// Recompute adds a QUERY rule for q to the original program and builds the
// specification of the enlarged program. It handles arbitrary functional
// queries, including non-uniform ones.
func Recompute(prog *ast.Program, q *ast.Query, engOpts engine.Options, specOpts specgraph.Options) (*Answers, error) {
	return RecomputeContext(context.Background(), prog, q, engOpts, specOpts)
}

// RecomputeContext is Recompute with cancellation: the fixpoint engine
// checks ctx between rounds and the whole evaluation aborts with the
// context's error.
func RecomputeContext(ctx context.Context, prog *ast.Program, q *ast.Query, engOpts engine.Options, specOpts specgraph.Options) (*Answers, error) {
	ctx, csp := obs.StartSpan(ctx, "compile")
	defer csp.End()
	enlarged := prog.Clone()
	fnVar, hasFn := FunctionalVar(q)
	freeFn := false
	if hasFn {
		for _, v := range q.Free {
			if v == fnVar {
				freeFn = true
			}
		}
	}

	var head ast.Atom
	var dataFree []symbols.VarID
	for _, v := range q.Free {
		if !hasFn || v != fnVar {
			dataFree = append(dataFree, v)
		}
	}
	if freeFn {
		p := enlarged.Tab.FreshPred("QUERY", len(dataFree), true)
		head = ast.Atom{Pred: p, FT: ast.FVar(fnVar)}
	} else {
		p := enlarged.Tab.FreshPred("QUERY", len(dataFree), false)
		head = ast.Atom{Pred: p}
	}
	for _, v := range dataFree {
		head.Args = append(head.Args, ast.V(v))
	}
	rule := ast.Rule{Head: head, Body: q.Atoms}
	if !rule.IsRangeRestricted() {
		return nil, ErrUnsafeQuery
	}
	enlarged.Rules = append(enlarged.Rules, rule)

	prep, err := rewrite.Prepare(enlarged)
	if err != nil {
		return nil, err
	}
	eng, err := engine.New(prep, term.NewUniverse(), facts.NewWorld(), engOpts)
	if err != nil {
		return nil, err
	}
	eng.SetContext(ctx)
	sp, err := specgraph.Build(eng, specOpts)
	if err != nil {
		return nil, err
	}

	a := newAnswers(q, sp)
	w := sp.W
	if freeFn {
		for _, rep := range sp.Reps {
			st := sp.StateOfRep(rep)
			for _, f := range w.StateAtoms(st) {
				if w.AtomPred(f) == head.Pred {
					a.add(rep, w.AtomTuple(f))
				}
			}
		}
	} else {
		for _, f := range eng.Global().ByPred(head.Pred) {
			a.add(term.None, w.AtomTuple(f))
		}
	}
	if err := chargeAnswers(ctx, len(a.seen)); err != nil {
		return nil, err
	}
	return a, nil
}

// HasFunctionalAnswers reports whether answer tuples carry a functional
// component.
func (a *Answers) HasFunctionalAnswers() bool { return a.FnVar != symbols.NoVar }

// Contains decides whether the ground tuple (ft, dataArgs) — dataArgs in
// the order of the non-functional free variables — belongs to the answer.
// For answers without a functional component pass term.None.
func (a *Answers) Contains(ft term.Term, dataArgs []symbols.ConstID) (bool, error) {
	a.lock()
	defer a.unlock()
	tu := a.be.Facts().Tuple(dataArgs)
	key := term.None
	if a.HasFunctionalAnswers() {
		rep, err := a.be.Representative(ft)
		if err != nil {
			return false, err
		}
		key = rep
	}
	return a.seen[repTuple{key, tu}], nil
}

// IsEmpty reports whether the answer set is empty.
func (a *Answers) IsEmpty() bool { return len(a.seen) == 0 }

// TuplesAt returns the data tuples whose functional component falls in
// rep's cluster.
func (a *Answers) TuplesAt(rep term.Term) []facts.TupleID { return a.perRep[rep] }

// TermString renders a functional answer component yielded by Enumerate.
// It takes no lock: call it from inside an Enumerate callback (which holds
// the answer's guard) or from single-goroutine code.
func (a *Answers) TermString(t term.Term) string {
	return a.be.Terms().String(t, a.be.Names())
}

// CompactTermString renders a functional answer component in the paper's
// compact notation. Locking contract as TermString.
func (a *Answers) CompactTermString(t term.Term) string {
	return a.be.Terms().CompactString(t, a.be.Names())
}

// ConstName renders a data constant of an answer tuple. Locking contract
// as TermString.
func (a *Answers) ConstName(c symbols.ConstID) string { return a.be.Names().ConstName(c) }

// TermSymbols returns the function symbols of a functional answer
// component, innermost-first. Locking contract as TermString.
func (a *Answers) TermSymbols(t term.Term) []symbols.FuncID { return a.be.Terms().Symbols(t) }

// FuncName renders a function symbol of an answer term. Locking contract
// as TermString.
func (a *Answers) FuncName(f symbols.FuncID) string { return a.be.Names().FuncName(f) }

// Enumerate yields ground answers with functional components of depth at
// most maxDepth, in precedence order of the functional component. For
// purely non-functional answers it yields each tuple once with term.None.
// It stops early when yield returns false.
func (a *Answers) Enumerate(maxDepth int, yield func(ft term.Term, dataArgs []symbols.ConstID) bool) error {
	return a.EnumerateContext(context.Background(), maxDepth, yield)
}

// EnumerateContext is Enumerate with cancellation, checked once per term
// depth level.
func (a *Answers) EnumerateContext(ctx context.Context, maxDepth int, yield func(ft term.Term, dataArgs []symbols.ConstID) bool) error {
	a.lock()
	defer a.unlock()
	w := a.be.Facts()
	if !a.HasFunctionalAnswers() {
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, tu := range a.perRep[term.None] {
			if !yield(term.None, w.TupleArgs(tu)) {
				return nil
			}
		}
		return nil
	}
	u := a.be.Terms()
	level := []term.Term{term.Zero}
	for d := 0; d <= maxDepth; d++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, t := range level {
			rep, err := a.be.Representative(t)
			if err != nil {
				return err
			}
			for _, tu := range a.perRep[rep] {
				if !yield(t, w.TupleArgs(tu)) {
					return nil
				}
			}
		}
		if d == maxDepth {
			break
		}
		var next []term.Term
		for _, t := range level {
			for _, f := range a.be.AlphabetFns() {
				next = append(next, u.Apply(f, t))
			}
		}
		level = next
	}
	return nil
}

// Dump renders the answer specification: the QUERY extension per
// representative (the incremental primary database Q(B)).
func (a *Answers) Dump() string {
	a.lock()
	defer a.unlock()
	tab := a.be.Names()
	u := a.be.Terms()
	w := a.be.Facts()
	var b strings.Builder
	fmt.Fprintf(&b, "answer specification for %s\n", a.Query.Format(tab))
	if !a.HasFunctionalAnswers() {
		for _, tu := range a.perRep[term.None] {
			b.WriteString("  QUERY(")
			writeArgs(&b, w, tab, tu)
			b.WriteString(")\n")
		}
		return b.String()
	}
	reps := make([]term.Term, 0, len(a.perRep))
	for r := range a.perRep {
		reps = append(reps, r)
	}
	sort.Slice(reps, func(i, j int) bool { return u.Compare(reps[i], reps[j]) < 0 })
	for _, r := range reps {
		for _, tu := range a.perRep[r] {
			fmt.Fprintf(&b, "  QUERY(%s", u.CompactString(r, tab))
			if len(w.TupleArgs(tu)) > 0 {
				b.WriteString(", ")
				writeArgs(&b, w, tab, tu)
			}
			b.WriteString(")\n")
		}
	}
	return b.String()
}

func writeArgs(b *strings.Builder, w facts.WorldView, tab symbols.Namer, tu facts.TupleID) {
	for i, c := range w.TupleArgs(tu) {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(tab.ConstName(c))
	}
}
