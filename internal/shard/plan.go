package shard

// Move is one database that must change groups to realize a new map.
type Move struct {
	DB   string
	From string // current owner group
	To   string // owner group under the new map
}

// Plan compares the placement of dbs under old and new and returns the
// databases that must move, in input order. It is the reshard flow's
// work list: apply each move (snapshot-ship + WAL-tail catch-up), then
// record it as an override in the flipped map.
func Plan(old, new *Map, dbs []string) ([]Move, error) {
	var moves []Move
	for _, db := range dbs {
		from, err := old.Owner(db)
		if err != nil {
			return nil, err
		}
		to, err := new.Owner(db)
		if err != nil {
			return nil, err
		}
		if from.Name != to.Name {
			moves = append(moves, Move{DB: db, From: from.Name, To: to.Name})
		}
	}
	return moves, nil
}
