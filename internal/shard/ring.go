// Package shard places databases onto shard groups and routes requests to
// them. The placement primitive is a consistent-hash ring with virtual
// nodes: each group claims VNodes points on a 64-bit circle and a database
// name is owned by the group claiming the first point at or after the
// name's hash. Adding or removing one group therefore moves only the keys
// that hashed into its arcs — roughly 1/len(groups) of the catalog — which
// is what makes resharding cheap: a database moves as a compact relational
// specification (binspec snapshot + WAL tail), never as materialized
// answers.
//
// A shard Map is versioned and immutable once built; Overrides pin
// individual databases to explicit groups (the durable record of completed
// reshards) and Frozen marks databases whose writes are briefly refused
// while a reshard drains their WAL tail.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is the virtual-node count per group when a map does not
// set one. 512 points per group keeps the expected per-group load within a
// few percent of uniform (coefficient of variation ~1/sqrt(vnodes) ≈ 4%)
// for realistic group counts, at a ring cost of ~8KB per group.
const DefaultVNodes = 512

// Group is one shard: a primary daemon and any number of read replicas.
type Group struct {
	// Name identifies the group in maps, metrics and reshard plans.
	Name string `json:"name"`
	// Primary is the base URL of the group's writable daemon.
	Primary string `json:"primary"`
	// Replicas are base URLs of the group's read replicas.
	Replicas []string `json:"replicas,omitempty"`
}

// Endpoints returns every base URL in the group, primary first.
func (g *Group) Endpoints() []string {
	eps := make([]string, 0, 1+len(g.Replicas))
	eps = append(eps, g.Primary)
	eps = append(eps, g.Replicas...)
	return eps
}

// Map is one versioned placement of database names onto groups. Build the
// ring with Ring (or let Owner build it lazily); a Map is immutable after
// that and safe for concurrent readers.
type Map struct {
	// Version orders maps; a router only installs a strictly newer map.
	Version uint64 `json:"version"`
	// VNodes is the virtual-node count per group; zero means DefaultVNodes.
	VNodes int `json:"vnodes,omitempty"`
	// Groups lists the shard groups. Order is irrelevant to placement
	// (points are claimed by hashed name, not index).
	Groups []Group `json:"groups"`
	// Overrides pins database names to explicit group names, bypassing the
	// ring. A completed reshard records its move here so the database stays
	// put even as the ring's arcs shift under later group changes.
	Overrides map[string]string `json:"overrides,omitempty"`
	// Frozen lists databases whose writes are refused with a retryable 409
	// while a reshard drains their WAL tail. Reads keep serving.
	Frozen []string `json:"frozen,omitempty"`

	ring *ring // built lazily by Owner/Ring
}

// ring is the materialized consistent-hash circle: sorted point hashes and
// the group index claiming each point.
type ring struct {
	points []uint64
	owner  []int // index into Map.Groups, parallel to points
}

// hashKey hashes a string to a point on the circle. Raw FNV clusters
// badly on short, similar strings (vnode labels differ in one digit), so
// the sum is pushed through a splitmix64-style finalizer to spread the
// points evenly.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Ring materializes the consistent-hash circle. It is idempotent and is
// called automatically by Owner; call it eagerly after decoding a map so
// concurrent readers never race the lazy build.
func (m *Map) Ring() {
	if m.ring != nil {
		return
	}
	vn := m.VNodes
	if vn <= 0 {
		vn = DefaultVNodes
	}
	r := &ring{}
	for gi, g := range m.Groups {
		for i := 0; i < vn; i++ {
			r.points = append(r.points, hashKey(fmt.Sprintf("%s#%d", g.Name, i)))
			r.owner = append(r.owner, gi)
		}
	}
	// Sort points and owners together; ties (hash collisions between
	// groups) break by group index so placement is deterministic.
	idx := make([]int, len(r.points))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := r.points[idx[a]], r.points[idx[b]]
		if pa != pb {
			return pa < pb
		}
		return r.owner[idx[a]] < r.owner[idx[b]]
	})
	sorted := &ring{points: make([]uint64, len(idx)), owner: make([]int, len(idx))}
	for i, j := range idx {
		sorted.points[i] = r.points[j]
		sorted.owner[i] = r.owner[j]
	}
	m.ring = sorted
}

// GroupNamed returns the group with the given name.
func (m *Map) GroupNamed(name string) (*Group, bool) {
	for i := range m.Groups {
		if m.Groups[i].Name == name {
			return &m.Groups[i], true
		}
	}
	return nil, false
}

// Owner returns the group owning db: the Overrides pin when present,
// otherwise the ring's claim.
func (m *Map) Owner(db string) (*Group, error) {
	if len(m.Groups) == 0 {
		return nil, fmt.Errorf("shard: map v%d has no groups", m.Version)
	}
	if name, ok := m.Overrides[db]; ok {
		g, ok := m.GroupNamed(name)
		if !ok {
			return nil, fmt.Errorf("shard: override for %q names unknown group %q", db, name)
		}
		return g, nil
	}
	m.Ring()
	h := hashKey(db)
	i := sort.Search(len(m.ring.points), func(i int) bool { return m.ring.points[i] >= h })
	if i == len(m.ring.points) {
		i = 0 // wrap the circle
	}
	return &m.Groups[m.ring.owner[i]], nil
}

// IsFrozen reports whether writes to db are currently refused pending a
// reshard flip.
func (m *Map) IsFrozen(db string) bool {
	for _, f := range m.Frozen {
		if f == db {
			return true
		}
	}
	return false
}

// Clone returns a deep copy with the ring reset, ready to be mutated into
// the next version.
func (m *Map) Clone() *Map {
	c := &Map{Version: m.Version, VNodes: m.VNodes}
	c.Groups = make([]Group, len(m.Groups))
	for i, g := range m.Groups {
		c.Groups[i] = Group{Name: g.Name, Primary: g.Primary,
			Replicas: append([]string(nil), g.Replicas...)}
	}
	if m.Overrides != nil {
		c.Overrides = make(map[string]string, len(m.Overrides))
		for k, v := range m.Overrides {
			c.Overrides[k] = v
		}
	}
	c.Frozen = append([]string(nil), m.Frozen...)
	return c
}
