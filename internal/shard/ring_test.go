package shard

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func testMap(version uint64, groups ...string) *Map {
	m := &Map{Version: version}
	for i, g := range groups {
		m.Groups = append(m.Groups, Group{Name: g,
			Primary:  fmt.Sprintf("http://10.0.0.%d:8344", i+1),
			Replicas: []string{fmt.Sprintf("http://10.0.1.%d:8344", i+1)}})
	}
	return m
}

func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("db-%c%d", 'a'+i%17, i)
	}
	return out
}

// TestRingDistribution: with virtual nodes, 1k names spread across the
// groups within ±15% of uniform — the property the ISSUE gates placement
// quality on.
func TestRingDistribution(t *testing.T) {
	for _, ngroups := range []int{2, 3, 4, 8} {
		var gs []string
		for i := 0; i < ngroups; i++ {
			gs = append(gs, fmt.Sprintf("g%d", i))
		}
		m := testMap(1, gs...)
		counts := make(map[string]int)
		for _, db := range names(1000) {
			g, err := m.Owner(db)
			if err != nil {
				t.Fatal(err)
			}
			counts[g.Name]++
		}
		uniform := 1000.0 / float64(ngroups)
		for g, c := range counts {
			if dev := (float64(c) - uniform) / uniform; dev < -0.15 || dev > 0.15 {
				t.Errorf("%d groups: %s owns %d names, %+.1f%% off uniform %v (want within ±15%%)",
					ngroups, g, c, dev*100, uniform)
			}
		}
	}
}

// TestRingStability: adding one group moves only roughly 1/(n+1) of the
// keys, and removing it moves exactly those keys back; no key moves
// between two groups that are present in both maps.
func TestRingStability(t *testing.T) {
	dbs := names(1000)
	before := testMap(1, "g0", "g1", "g2")
	after := testMap(2, "g0", "g1", "g2", "g3")

	moves, err := Plan(before, after, dbs)
	if err != nil {
		t.Fatal(err)
	}
	// Expected fraction moved: 1/4. Allow up to 1.6× the expectation —
	// generous for hash variance, far below the ~3/4 a modulo scheme moves.
	expected := float64(len(dbs)) / 4
	if f := float64(len(moves)); f == 0 || f > expected*1.6 {
		t.Errorf("adding g3 moved %d/%d keys, want ~%.0f (≤%.0f)", len(moves), len(dbs), expected, expected*1.6)
	}
	for _, mv := range moves {
		if mv.To != "g3" {
			t.Errorf("adding g3 moved %q from %s to %s; only moves INTO the new group are legitimate",
				mv.DB, mv.From, mv.To)
		}
	}
	// Removing the group again restores the original placement exactly.
	back, err := Plan(after, before, dbs)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(moves) {
		t.Errorf("removing g3 moved %d keys, adding moved %d; must be symmetric", len(back), len(moves))
	}
	for _, mv := range back {
		if mv.From != "g3" {
			t.Errorf("removing g3 moved %q from %s; only keys owned by g3 may move", mv.DB, mv.From)
		}
	}
}

// TestRingDeterminism: placement is a pure function of (map, name).
func TestRingDeterminism(t *testing.T) {
	m1, m2 := testMap(1, "g0", "g1", "g2"), testMap(1, "g2", "g0", "g1") // group order irrelevant
	for _, db := range names(200) {
		a, _ := m1.Owner(db)
		b, _ := m2.Owner(db)
		if a.Name != b.Name {
			t.Fatalf("owner of %q depends on group declaration order: %s vs %s", db, a.Name, b.Name)
		}
	}
}

func TestOverridesAndFrozen(t *testing.T) {
	m := testMap(3, "g0", "g1")
	m.Overrides = map[string]string{"pinned": "g1"}
	m.Frozen = []string{"moving"}
	g, err := m.Owner("pinned")
	if err != nil || g.Name != "g1" {
		t.Fatalf("override ignored: %v %v", g, err)
	}
	if !m.IsFrozen("moving") || m.IsFrozen("pinned") {
		t.Fatal("Frozen membership wrong")
	}
	m.Overrides["bad"] = "nope"
	if err := m.Validate(); err == nil {
		t.Fatal("override to unknown group validated")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	m := testMap(7, "g0", "g1")
	m.Overrides = map[string]string{"hot": "g1"}
	raw, err := EncodeMap(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMap(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 7 || len(got.Groups) != 2 || got.Overrides["hot"] != "g1" {
		t.Fatalf("round trip lost data: %+v", got)
	}
	// Rejections: wrong format, no groups, bad URL, version 0, dup names.
	for name, raw := range map[string]string{
		"format":  `{"format":"nope/v9","version":1,"groups":[{"name":"g","primary":"http://x"}]}`,
		"empty":   `{"format":"funcdb-shardmap/v1","version":1,"groups":[]}`,
		"badurl":  `{"format":"funcdb-shardmap/v1","version":1,"groups":[{"name":"g","primary":"not a url"}]}`,
		"ver0":    `{"format":"funcdb-shardmap/v1","version":0,"groups":[{"name":"g","primary":"http://x"}]}`,
		"dupname": `{"format":"funcdb-shardmap/v1","version":1,"groups":[{"name":"g","primary":"http://x"},{"name":"g","primary":"http://y"}]}`,
	} {
		if _, err := DecodeMap([]byte(raw)); err == nil {
			t.Errorf("%s: invalid map decoded", name)
		}
	}
}

func TestSourceInstallMonotonic(t *testing.T) {
	s := NewSource(testMap(5, "g0"))
	defer s.Close()
	if err := s.Install(testMap(5, "g0")); err == nil {
		t.Fatal("same-version install accepted")
	}
	if err := s.Install(testMap(4, "g0")); err == nil {
		t.Fatal("older install accepted")
	}
	var gotOld, gotNew uint64
	s.OnChange(func(old, new *Map) { gotOld, gotNew = old.Version, new.Version })
	if err := s.Install(testMap(6, "g0", "g1")); err != nil {
		t.Fatal(err)
	}
	if s.Version() != 6 || gotOld != 5 || gotNew != 6 {
		t.Fatalf("install: version=%d change=(%d->%d)", s.Version(), gotOld, gotNew)
	}
}

func TestSourceFileHotReload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shardmap.json")
	if err := WriteFile(path, testMap(1, "g0")); err != nil {
		t.Fatal(err)
	}
	s := NewSource(nil)
	defer s.Close()
	if err := s.WatchFile(path, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if s.Version() != 1 {
		t.Fatalf("initial load: version %d", s.Version())
	}
	// A newer file is picked up; mtime granularity can be coarse, so nudge it.
	if err := WriteFile(path, testMap(2, "g0", "g1")); err != nil {
		t.Fatal(err)
	}
	future := time.Now().Add(2 * time.Second)
	os.Chtimes(path, future, future)
	deadline := time.Now().Add(5 * time.Second)
	for s.Version() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("hot reload never happened (version %d)", s.Version())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// A stale (older-version) file never rolls the live map back.
	if err := s.Install(testMap(9, "g0")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, testMap(3, "g0")); err != nil {
		t.Fatal(err)
	}
	future = future.Add(2 * time.Second)
	os.Chtimes(path, future, future)
	time.Sleep(50 * time.Millisecond)
	if s.Version() != 9 {
		t.Fatalf("stale file rolled the map back to v%d", s.Version())
	}
}

func TestWatchFileBadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := NewSource(nil)
	defer s.Close()
	if err := s.WatchFile(path, time.Second); err == nil || !strings.Contains(err.Error(), "bad.json") {
		t.Fatalf("bad file accepted: %v", err)
	}
}
