// Live-reshard integration test: real store-backed daemons behind a real
// router, a writer hammering the moving database throughout. External test
// package because it wires in internal/server, which the shard package
// itself never imports.
package shard_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"funcdb/internal/core"
	"funcdb/internal/registry"
	"funcdb/internal/repl"
	"funcdb/internal/server"
	"funcdb/internal/shard"
	"funcdb/internal/store"
)

// newStorePrimary runs a WAL-backed fdbd-shaped server: durable registry,
// replication endpoints on, short heartbeat so WAL tails catch up fast.
func newStorePrimary(t *testing.T) (*httptest.Server, *registry.Registry) {
	t.Helper()
	st, err := store.Open(store.Options{Dir: t.TempDir(), Fsync: store.FsyncNever, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New(core.Options{})
	if _, err := st.Recover(reg); err != nil {
		t.Fatal(err)
	}
	srv := server.New(reg, server.Config{Repl: st, ReplHeartbeat: 25 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); st.Close() })
	return ts, reg
}

// TestReshardLive moves a database between two real groups while a client
// keeps writing through the router. Every write the client saw succeed
// must be answerable after the move — zero lost writes — and the final
// map must pin the database to the target group.
func TestReshardLive(t *testing.T) {
	tsA, _ := newStorePrimary(t)
	tsB, regB := newStorePrimary(t)
	m := &shard.Map{
		Version: 1,
		VNodes:  8,
		Groups: []shard.Group{
			{Name: "ga", Primary: tsA.URL},
			{Name: "gb", Primary: tsB.URL},
		},
		Overrides: map[string]string{"movedb": "ga"},
	}
	src := shard.NewSource(m)
	t.Cleanup(func() { src.Close() })
	rt := shard.NewRouter(src, shard.Options{ShardTimeout: 5 * time.Second})
	router := httptest.NewServer(rt)
	t.Cleanup(router.Close)

	c := &repl.RemoteClient{Base: router.URL, DB: "movedb"}
	if err := c.Put([]byte("Mark(0).\n")); err != nil {
		t.Fatal(err)
	}

	// Writer: extend facts through the router as fast as the stack allows,
	// before, during and after the reshard. The client retries the
	// freeze's 409s internally; any surfaced error is a test failure.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var committed []int
	var writeErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.AddFacts(fmt.Sprintf("Mark(%d).", i)); err != nil {
				mu.Lock()
				writeErr = fmt.Errorf("write %d: %w", i, err)
				mu.Unlock()
				return
			}
			mu.Lock()
			committed = append(committed, i)
			mu.Unlock()
		}
	}()

	// Let some pre-move writes land, then move the database live.
	time.Sleep(150 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := shard.Reshard(ctx, shard.ReshardOptions{
		DB:          "movedb",
		TargetGroup: "gb",
		Routers:     []string{router.URL},
		TailTimeout: 10 * time.Second,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatalf("reshard: %v", err)
	}
	if res.From != "ga" || res.To != "gb" {
		t.Fatalf("moved %s -> %s, want ga -> gb", res.From, res.To)
	}

	// A few post-move writes must land on the new owner.
	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()
	mu.Lock()
	err, n := writeErr, len(committed)
	mu.Unlock()
	if err != nil {
		t.Fatalf("writer saw a non-retryable failure: %v", err)
	}
	if n < 3 {
		t.Fatalf("only %d writes committed; test did not exercise the move", n)
	}

	// The router's live map pins movedb to gb, unfrozen, two versions on.
	cur := src.Current()
	if cur.Version != m.Version+2 {
		t.Fatalf("final map version %d, want %d", cur.Version, m.Version+2)
	}
	if cur.Overrides["movedb"] != "gb" {
		t.Fatalf("final overrides %v, want movedb -> gb", cur.Overrides)
	}
	if cur.IsFrozen("movedb") {
		t.Fatalf("movedb still frozen after reshard")
	}
	if owner, err := cur.Owner("movedb"); err != nil || owner.Name != "gb" {
		t.Fatalf("owner = %v, %v; want gb", owner, err)
	}

	// The target group really holds the database...
	if _, ok := regB.Get("movedb"); !ok {
		t.Fatalf("target registry has no movedb after reshard")
	}
	// ...and every committed write answers true through the router. This
	// is the zero-lost-writes check: a fact acked before, during or after
	// the move must be derivable from the new owner.
	mu.Lock()
	marks := append([]int(nil), committed...)
	mu.Unlock()
	for _, i := range marks {
		yes, _, err := c.Ask(ctx, fmt.Sprintf("?- Mark(%d).", i))
		if err != nil {
			t.Fatalf("post-move ask Mark(%d): %v", i, err)
		}
		if !yes {
			t.Fatalf("lost write: Mark(%d) acked but not derivable after reshard", i)
		}
	}
	t.Logf("reshard under load: %d writes, %d WAL mutations replayed, watermark %d",
		n, res.Replayed, res.Watermark)
}

// TestReshardNoStaleAnswer is the staleness regression for the
// version-keyed answer caches across a reshard flip: a verdict cached on
// the old owner before the move must not be served for the same query once
// a post-move write on the new owner makes the answer flip.
func TestReshardNoStaleAnswer(t *testing.T) {
	tsA, _ := newStorePrimary(t)
	tsB, _ := newStorePrimary(t)
	m := &shard.Map{
		Version: 1,
		VNodes:  8,
		Groups: []shard.Group{
			{Name: "ga", Primary: tsA.URL},
			{Name: "gb", Primary: tsB.URL},
		},
		Overrides: map[string]string{"flipdb": "ga"},
	}
	src := shard.NewSource(m)
	t.Cleanup(func() { src.Close() })
	router := httptest.NewServer(shard.NewRouter(src, shard.Options{ShardTimeout: 5 * time.Second}))
	t.Cleanup(router.Close)

	c := &repl.RemoteClient{Base: router.URL, DB: "flipdb"}
	if err := c.Put([]byte("Flip(0).\n")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Cache a negative verdict on the old owner — twice, so the second ask
	// is served from ga's shape-keyed response cache.
	const q = "?- Flip(1)."
	for i := 0; i < 2; i++ {
		yes, _, err := c.Ask(ctx, q)
		if err != nil {
			t.Fatalf("pre-move ask: %v", err)
		}
		if yes {
			t.Fatalf("Flip(1) true before it was written")
		}
	}

	if _, err := shard.Reshard(ctx, shard.ReshardOptions{
		DB:          "flipdb",
		TargetGroup: "gb",
		Routers:     []string{router.URL},
		TailTimeout: 10 * time.Second,
		Logf:        t.Logf,
	}); err != nil {
		t.Fatalf("reshard: %v", err)
	}

	// The write that flips the answer lands on the new owner.
	if _, err := c.AddFacts("Flip(1)."); err != nil {
		t.Fatalf("post-move write: %v", err)
	}
	// The cached false from before the flip must not survive — neither for
	// the exact spelling nor for a respelling sharing its canonical shape.
	for _, spelling := range []string{q, "?-  Flip( 1 )."} {
		yes, _, err := c.Ask(ctx, spelling)
		if err != nil {
			t.Fatalf("post-move ask %q: %v", spelling, err)
		}
		if !yes {
			t.Fatalf("stale answer served for %q after reshard flip", spelling)
		}
	}
}

// TestReshardRejectsBadTargets covers the argument-validation surface
// without standing up a topology.
func TestReshardRejectsBadTargets(t *testing.T) {
	ctx := context.Background()
	if _, err := shard.Reshard(ctx, shard.ReshardOptions{DB: "x"}); err == nil {
		t.Fatal("missing target accepted")
	}
	if _, err := shard.Reshard(ctx, shard.ReshardOptions{DB: "x", TargetGroup: "g"}); err == nil {
		t.Fatal("missing routers accepted")
	}

	tsA, _ := newStorePrimary(t)
	m := &shard.Map{Version: 1, Groups: []shard.Group{{Name: "ga", Primary: tsA.URL}}}
	src := shard.NewSource(m)
	t.Cleanup(func() { src.Close() })
	router := httptest.NewServer(shard.NewRouter(src, shard.Options{}))
	t.Cleanup(router.Close)

	_, err := shard.Reshard(ctx, shard.ReshardOptions{
		DB: "anydb", TargetGroup: "nope", Routers: []string{router.URL}})
	if err == nil || !strings.Contains(err.Error(), "no group") {
		t.Fatalf("unknown group error = %v", err)
	}
	_, err = shard.Reshard(ctx, shard.ReshardOptions{
		DB: "anydb", TargetGroup: "ga", Routers: []string{router.URL}})
	if err == nil || !strings.Contains(err.Error(), "already lives") {
		t.Fatalf("same-group error = %v", err)
	}
}
