package shard

import (
	"fmt"
	"log/slog"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Source holds the router's current shard map and keeps it fresh: an
// atomic pointer for lock-free readers, Install for admin-driven bumps
// (the reshard flow), and an optional file poller for operator-driven hot
// reload. Both paths enforce version monotonicity, so a stale file left on
// disk can never roll back a reshard the admin API already flipped.
type Source struct {
	cur atomic.Pointer[Map]

	mu       sync.Mutex
	path     string
	fileMod  time.Time
	fileSize int64
	onChange []func(old, new *Map)
	stop     chan struct{}
	stopOnce sync.Once
	log      *slog.Logger
}

// NewSource returns a source serving m (which may be nil: the router stays
// unready until a map arrives via Install or a file reload).
func NewSource(m *Map) *Source {
	s := &Source{stop: make(chan struct{}), log: slog.Default()}
	if m != nil {
		m.Ring()
		s.cur.Store(m)
	}
	return s
}

// SetLogger routes reload notices; nil keeps slog.Default().
func (s *Source) SetLogger(l *slog.Logger) {
	if l != nil {
		s.log = l
	}
}

// Current returns the live map, or nil before the first install.
func (s *Source) Current() *Map { return s.cur.Load() }

// Version returns the live map's version, 0 before the first install.
func (s *Source) Version() uint64 {
	if m := s.cur.Load(); m != nil {
		return m.Version
	}
	return 0
}

// OnChange registers a callback invoked (outside the source's lock) after
// every successful install with the previous and new map. The router uses
// it to cut proxied streams whose database changed owners.
func (s *Source) OnChange(fn func(old, new *Map)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onChange = append(s.onChange, fn)
}

// Install publishes m if it validates and is strictly newer than the live
// map. Returns the error that names the stale version otherwise.
func (s *Source) Install(m *Map) error {
	if err := m.Validate(); err != nil {
		return err
	}
	m.Ring()
	s.mu.Lock()
	old := s.cur.Load()
	if old != nil && m.Version <= old.Version {
		s.mu.Unlock()
		return fmt.Errorf("shard: map v%d is not newer than live v%d", m.Version, old.Version)
	}
	s.cur.Store(m)
	fns := append(s.onChange[:0:0], s.onChange...)
	s.mu.Unlock()
	for _, fn := range fns {
		fn(old, m)
	}
	return nil
}

// WatchFile starts polling path every interval and installs the file's map
// whenever its version is newer than the live map. Shard maps are small,
// so every poll decodes the file outright — an mtime gate would miss
// writes landing within the kernel's coarse-clock timestamp granularity.
// The first load happens synchronously so a bad file fails startup loudly.
func (s *Source) WatchFile(path string, interval time.Duration) error {
	m, err := LoadFile(path)
	if err != nil {
		return err
	}
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	if cur := s.cur.Load(); cur == nil || m.Version > cur.Version {
		if err := s.Install(m); err != nil {
			return err
		}
	}
	s.mu.Lock()
	s.path = path
	s.fileMod = st.ModTime()
	s.fileSize = st.Size()
	s.mu.Unlock()
	if interval <= 0 {
		interval = time.Second
	}
	go s.poll(interval)
	return nil
}

// Close stops the file poller, if any.
func (s *Source) Close() { s.stopOnce.Do(func() { close(s.stop) }) }

func (s *Source) poll(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
		s.mu.Lock()
		path, mod, size := s.path, s.fileMod, s.fileSize
		s.mu.Unlock()
		st, err := os.Stat(path)
		if err != nil {
			continue
		}
		// The stat identity only gates the warnings below, so a bad or
		// stale file is reported once per edit instead of every poll.
		changed := !st.ModTime().Equal(mod) || st.Size() != size
		if changed {
			s.mu.Lock()
			s.fileMod, s.fileSize = st.ModTime(), st.Size()
			s.mu.Unlock()
		}
		m, err := LoadFile(path)
		if err != nil {
			if changed {
				s.log.Warn("shard map reload failed", "path", path, "error", err)
			}
			continue
		}
		if cur := s.cur.Load(); cur != nil && m.Version <= cur.Version {
			// A completed reshard bumped past the file; the operator's copy
			// is stale, not wrong. Stay on the newer live map.
			if changed {
				s.log.Warn("shard map file is stale", "path", path,
					"file_version", m.Version, "live_version", cur.Version)
			}
			continue
		}
		if err := s.Install(m); err != nil {
			s.log.Warn("shard map install failed", "path", path, "error", err)
			continue
		}
		s.log.Info("shard map reloaded", "path", path, "version", m.Version)
	}
}
