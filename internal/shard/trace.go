// Router-side distributed tracing and flight-recorder endpoints. Every
// proxied request runs under a trace that adopts the client's traceparent
// (or mints a fresh ID), each forward attempt is a span whose ID rides the
// outgoing traceparent header, and traced responses come back with the
// shard's span tree grafted under the forward span — so fdbq -trace through
// the router renders one merged router→shard→replica tree. The router also
// keeps its own flight recorder and scatter-gathers GET /debug/traces across
// every endpoint of every group (the recorder is per-process, so one healthy
// endpoint per group would miss entries recorded elsewhere).
package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"funcdb/internal/obs"
)

// statusWriter captures the status (and, for router-origin failures, the
// error code) written to a response, so the recorder can classify the entry.
type statusWriter struct {
	http.ResponseWriter
	status int
	code   string
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(p)
}

// Flush forwards to the wrapped writer so proxied watch streams keep
// flushing frame-by-frame through the wrapper.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// routerEndpoint labels a proxied request for recorder entries, matching the
// endpoint vocabulary the shards use.
func routerEndpoint(r *http.Request) string {
	p := r.URL.Path
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		switch seg := p[i+1:]; seg {
		case "ask", "answers", "batch", "explain", "watch", "facts", "stats":
			return seg
		}
	}
	switch r.Method {
	case http.MethodPut:
		return "put"
	case http.MethodDelete:
		return "delete"
	default:
		return "db"
	}
}

// beginTrace adopts (or mints) a trace for a proxied request and opens its
// root span. With the recorder disabled it only wraps the writer; tr and
// root come back nil and every downstream trace call degrades to a no-op.
func (rt *Router) beginTrace(w http.ResponseWriter, r *http.Request) (*statusWriter, *http.Request, *obs.Trace, *obs.SpanHandle) {
	sw := &statusWriter{ResponseWriter: w}
	if rt.rec == nil {
		return sw, r, nil, nil
	}
	tid, parent, _ := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader))
	tr := obs.NewTraceWith(tid)
	if parent != "" {
		tr.SetRemoteParent(parent)
	}
	ctx, root := obs.StartSpan(obs.WithTrace(r.Context(), tr), "route")
	w.Header().Set("X-Trace-Id", tr.ID())
	return sw, r.WithContext(ctx), tr, root
}

// finishTrace closes the root span and offers the finished request to the
// flight recorder. Watch streams are only recorded when they fail — a
// healthy stream's lifetime is not a latency.
func (rt *Router) finishTrace(sw *statusWriter, tr *obs.Trace, root *obs.SpanHandle, endpoint, db string, start time.Time, body []byte) {
	if tr == nil {
		return
	}
	root.End()
	status := sw.status
	if status == 0 {
		status = http.StatusOK
	}
	outcome := obs.OutcomeForStatus(status, sw.code)
	if endpoint == "watch" && outcome == obs.OutcomeOK {
		return
	}
	rt.rec.Offer(obs.TraceEntry{
		ID:         tr.ID(),
		TimeUnixMS: start.UnixMilli(),
		DurUS:      time.Since(start).Microseconds(),
		Endpoint:   endpoint,
		DB:         db,
		Status:     status,
		Code:       sw.code,
		Outcome:    outcome,
		Node:       "router",
		Keep:       wantsTrace(body),
	}, tr)
}

// wantsTrace reports whether a request body opted into tracing ("trace":
// true), which both forces recorder retention and triggers response-tree
// merging.
func wantsTrace(body []byte) bool {
	if len(body) == 0 || !bytes.Contains(body, []byte(`"trace"`)) {
		return false
	}
	var req struct {
		Trace bool `json:"trace"`
	}
	return json.Unmarshal(body, &req) == nil && req.Trace
}

// mergeTraceBody grafts the shard's span tree (the "trace" key of raw) into
// the router trace under span underID and returns the response with the
// merged report swapped in. ok=false means raw should be relayed untouched.
func mergeTraceBody(tr *obs.Trace, underID int, raw []byte) ([]byte, bool) {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, false
	}
	childRaw, found := m["trace"]
	if !found {
		return nil, false
	}
	child := &obs.Report{}
	if err := json.Unmarshal(childRaw, child); err != nil {
		return nil, false
	}
	rep := tr.Report()
	obs.GraftReport(rep, underID, child)
	merged, err := json.Marshal(rep)
	if err != nil {
		return nil, false
	}
	m["trace"] = merged
	out, err := json.Marshal(m)
	if err != nil {
		return nil, false
	}
	return out, true
}

// ---- /debug/traces: local recorder + fleet scatter-gather ----

// routerTraceLimit caps one list response, matching the shards' own cap.
const routerTraceLimit = 1000

var traceFilterParams = []string{"db", "outcome", "tenant", "endpoint"}

func filterTraceEntries(entries []*obs.TraceEntry, q url.Values) []*obs.TraceEntry {
	for _, p := range traceFilterParams {
		want := q.Get(p)
		if want == "" {
			continue
		}
		kept := entries[:0]
		for _, e := range entries {
			var have string
			switch p {
			case "db":
				have = e.DB
			case "outcome":
				have = e.Outcome
			case "tenant":
				have = e.Tenant
			case "endpoint":
				have = e.Endpoint
			}
			if have == want {
				kept = append(kept, e)
			}
		}
		entries = kept
	}
	return entries
}

// debugGET fetches a shard debug endpoint, forwarding the caller's tenant
// key so per-shard auth still applies.
func (rt *Router) debugGET(ctx context.Context, ep, path, apiKey string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimSuffix(ep, "/")+path, nil)
	if err != nil {
		return nil, err
	}
	if apiKey != "" {
		req.Header.Set("X-Api-Key", apiKey)
	}
	return rt.shardDo(req)
}

// traceEndpoints flattens the map into every (group, endpoint) pair —
// primaries and replicas alike, because each process records its own ring.
func traceEndpoints(m *Map) (groups, eps []string) {
	for i := range m.Groups {
		g := &m.Groups[i]
		for _, ep := range g.Endpoints() {
			groups = append(groups, g.Name)
			eps = append(eps, ep)
		}
	}
	return groups, eps
}

// handleTraceList merges the router's recorder with GET /debug/traces from
// every endpoint of every group, newest first. Endpoints that fail inside
// the per-shard deadline are reported in the partial-failure envelope.
func (rt *Router) handleTraceList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	n := 100
	if v := q.Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed <= 0 {
			rt.fail(w, http.StatusBadRequest, "bad_request", "invalid n %q", v)
			return
		}
		n = parsed
	}
	if n > routerTraceLimit {
		n = routerTraceLimit
	}
	entries := rt.rec.List(n)
	for _, e := range entries {
		if e.Node == "" {
			e.Node = "router"
		}
	}
	entries = filterTraceEntries(entries, q)

	var failed []shardFailure
	if m := rt.src.Current(); m != nil {
		path := "/debug/traces?n=" + strconv.Itoa(n)
		for _, p := range traceFilterParams {
			if v := q.Get(p); v != "" {
				path += "&" + p + "=" + url.QueryEscape(v)
			}
		}
		apiKey := r.Header.Get("X-Api-Key")
		groups, eps := traceEndpoints(m)
		var wg sync.WaitGroup
		var mu sync.Mutex
		for i := range eps {
			wg.Add(1)
			go func(group, ep string) {
				defer wg.Done()
				legCtx, cancel := context.WithTimeout(r.Context(), rt.timeout)
				defer cancel()
				raw, err := rt.debugGET(legCtx, ep, path, apiKey)
				if err != nil {
					mu.Lock()
					failed = append(failed, shardFailure{Group: group + " " + ep, Error: err.Error()})
					mu.Unlock()
					return
				}
				var body struct {
					Traces []*obs.TraceEntry `json:"traces"`
				}
				if err := json.Unmarshal(raw, &body); err != nil {
					mu.Lock()
					failed = append(failed, shardFailure{Group: group + " " + ep, Error: err.Error()})
					mu.Unlock()
					return
				}
				for _, e := range body.Traces {
					if e.Node == "" {
						e.Node = group + " " + ep
					}
				}
				mu.Lock()
				entries = append(entries, body.Traces...)
				mu.Unlock()
			}(groups[i], eps[i])
		}
		wg.Wait()
	}

	sort.Slice(entries, func(i, j int) bool { return entries[i].TimeUnixMS > entries[j].TimeUnixMS })
	if len(entries) > n {
		entries = entries[:n]
	}
	resp := map[string]any{"traces": entries, "count": len(entries)}
	if entries == nil {
		resp["traces"] = []*obs.TraceEntry{}
	}
	if len(failed) > 0 {
		sort.Slice(failed, func(i, j int) bool { return failed[i].Group < failed[j].Group })
		resp["partial"] = true
		resp["failed"] = failed
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTraceGet finds one recorded trace by ID: the router's own ring
// first, then every endpoint of every group in parallel. When several
// processes recorded the same trace ID the most recent entry wins.
func (rt *Router) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	best := rt.rec.Get(id)
	if best != nil && best.Node == "" {
		best.Node = "router"
	}
	if m := rt.src.Current(); m != nil {
		apiKey := r.Header.Get("X-Api-Key")
		groups, eps := traceEndpoints(m)
		var wg sync.WaitGroup
		var mu sync.Mutex
		for i := range eps {
			wg.Add(1)
			go func(group, ep string) {
				defer wg.Done()
				legCtx, cancel := context.WithTimeout(r.Context(), rt.timeout)
				defer cancel()
				raw, err := rt.debugGET(legCtx, ep, "/debug/traces/"+url.PathEscape(id), apiKey)
				if err != nil {
					return // a miss on one process is not an error
				}
				e := &obs.TraceEntry{}
				if json.Unmarshal(raw, e) != nil || e.ID == "" {
					return
				}
				if e.Node == "" {
					e.Node = group + " " + ep
				}
				mu.Lock()
				if best == nil || e.TimeUnixMS > best.TimeUnixMS {
					best = e
				}
				mu.Unlock()
			}(groups[i], eps[i])
		}
		wg.Wait()
	}
	if best == nil {
		rt.fail(w, http.StatusNotFound, "not_found", "no recorded trace %q", id)
		return
	}
	writeJSON(w, http.StatusOK, best)
}

// errorCode extracts the machine-readable code from a shard's standard
// {"error":{"code":...}} envelope; empty when the body is anything else.
func errorCode(raw []byte) string {
	var body struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if json.Unmarshal(raw, &body) != nil {
		return ""
	}
	return body.Error.Code
}
