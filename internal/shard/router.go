package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"funcdb/internal/obs"
)

// Router is the stateless fdbrouter core: an http.Handler that proxies the
// public /v1 API to the shard groups named by the live Map. It owns no
// catalog state — everything it needs is the map — so any number of router
// instances can run behind one load balancer.
//
// Placement rules:
//   - writes (PUT/DELETE db, POST facts) go to the owner group's primary
//     only, and are refused with a retryable 409 "resharding" while the
//     database is frozen mid-reshard;
//   - reads (info, ask, answers, batch, explain, watch) round-robin across
//     the owner group's endpoints, skipping endpoints whose /readyz probe
//     failed recently and failing over on transport errors;
//   - GET /v1/dbs and POST /v1/batch scatter-gather across every group
//     with a per-shard deadline, reporting stragglers in a partial-failure
//     envelope instead of failing the whole request.
type Router struct {
	src     *Source
	client  *http.Client
	log     *slog.Logger
	timeout time.Duration // per-shard deadline for fan-out legs
	handler http.Handler

	// health caches one verdict per endpoint so a dead replica costs one
	// probe per TTL, not one timeout per request.
	healthMu sync.Mutex
	health   map[string]healthVerdict

	// writes counts in-flight write requests per database; the reshard
	// flow's drain step waits for a frozen database's count to reach zero
	// before trusting the WAL tail to be final.
	writesMu sync.Mutex
	writes   map[string]int

	// streams tracks proxied watch streams so a shard-map flip can cut the
	// ones whose database changed owners; clients reconnect and land on
	// the new group.
	streamsMu sync.Mutex
	streams   map[*proxiedStream]struct{}

	rrMu sync.Mutex
	rr   map[string]int // group name -> next read endpoint index

	met        *obs.Registry
	rec        *obs.Recorder
	mFanout    *obs.Histogram
	mProxy     *obs.Histogram
	mStreams   *obs.Gauge
	mFailovers *obs.Counter
}

type healthVerdict struct {
	ok    bool
	until time.Time
}

type proxiedStream struct {
	db     string
	cancel context.CancelFunc
}

// Options configures a Router. The zero value works.
type Options struct {
	// ShardTimeout bounds each scatter-gather leg (default 5s).
	ShardTimeout time.Duration
	// Client performs upstream requests; default has no global timeout
	// (per-request contexts bound the fan-out legs; watch streams are
	// unbounded by design).
	Client *http.Client
	// Logger for request warnings; default slog.Default().
	Logger *slog.Logger
	// Metrics receives router series; default a fresh registry exposed at
	// the router's own /metrics.
	Metrics *obs.Registry
	// TraceBuffer sizes the router's flight recorder (entries). Negative
	// disables it — and with it the router-side always-on tracing. Zero
	// means obs.DefaultTraceBuffer.
	TraceBuffer int
	// TraceSample keeps one in N unremarkable proxied requests in the
	// flight recorder; zero means obs.DefaultTraceSample.
	TraceSample int
	// SlowTrace marks proxied requests at least this slow for retention;
	// zero means obs.DefaultSlowTrace.
	SlowTrace time.Duration
}

const (
	healthTTL     = 2 * time.Second
	probeTimeout  = 750 * time.Millisecond
	maxProxyBody  = 16 << 20 // request bodies buffered for endpoint failover
	retryAfterSec = "1"
)

// NewRouter wires a Router over src.
func NewRouter(src *Source, opts Options) *Router {
	rt := &Router{
		src:     src,
		client:  opts.Client,
		log:     opts.Logger,
		timeout: opts.ShardTimeout,
		health:  make(map[string]healthVerdict),
		writes:  make(map[string]int),
		streams: make(map[*proxiedStream]struct{}),
		rr:      make(map[string]int),
		met:     opts.Metrics,
	}
	if rt.client == nil {
		rt.client = &http.Client{}
	}
	if rt.log == nil {
		rt.log = slog.Default()
	}
	if rt.timeout <= 0 {
		rt.timeout = 5 * time.Second
	}
	if rt.met == nil {
		rt.met = obs.NewRegistry()
	}
	rt.mFanout = rt.met.Histogram("fdbrouter_fanout_seconds",
		"Wall time of scatter-gather requests (dbs listing, cross-db batch).", obs.DurationBuckets)
	rt.mProxy = rt.met.Histogram("fdbrouter_proxy_seconds",
		"Wall time of single-shard proxied requests.", obs.DurationBuckets)
	rt.mStreams = rt.met.Gauge("fdbrouter_streams",
		"Currently proxied watch streams.")
	rt.mFailovers = rt.met.Counter("fdbrouter_failovers_total",
		"Read requests that failed over to another endpoint in the group.")
	rt.met.GaugeFunc("fdbrouter_shardmap_version",
		"Version of the live shard map.", func() float64 { return float64(src.Version()) })
	if opts.TraceBuffer >= 0 {
		rt.rec = obs.NewRecorder(opts.TraceBuffer, opts.SlowTrace, opts.TraceSample)
		rt.rec.Instrument(rt.met, "fdbrouter_")
	}
	obs.RegisterBuildInfo(rt.met, "fdbrouter", "")

	src.OnChange(rt.cutMovedStreams)

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /readyz", rt.handleReadyz)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	mux.HandleFunc("GET /v1/shardmap", rt.handleMapGet)
	mux.HandleFunc("PUT /v1/shardmap", rt.handleMapPut)
	mux.HandleFunc("GET /v1/dbs", rt.handleListDBs)
	mux.HandleFunc("POST /v1/batch", rt.handleCrossBatch)
	mux.HandleFunc("PUT /v1/db/{name}", rt.handleWrite)
	mux.HandleFunc("DELETE /v1/db/{name}", rt.handleWrite)
	mux.HandleFunc("POST /v1/db/{name}/facts", rt.handleWrite)
	mux.HandleFunc("GET /v1/db/{name}", rt.handleRead)
	mux.HandleFunc("POST /v1/db/{name}/ask", rt.handleRead)
	mux.HandleFunc("POST /v1/db/{name}/answers", rt.handleRead)
	mux.HandleFunc("POST /v1/db/{name}/batch", rt.handleRead)
	mux.HandleFunc("GET /v1/db/{name}/explain", rt.handleRead)
	mux.HandleFunc("POST /v1/db/{name}/watch", rt.handleWatch)
	if rt.rec != nil {
		mux.HandleFunc("GET /debug/traces", rt.handleTraceList)
		mux.HandleFunc("GET /debug/traces/{id}", rt.handleTraceGet)
	}
	rt.handler = mux
	return rt
}

// Recorder exposes the router's flight recorder (nil when disabled), so the
// daemon and tests can inspect it.
func (rt *Router) Recorder() *obs.Recorder { return rt.rec }

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.handler.ServeHTTP(w, r) }

// ---- error envelope (matches internal/server's shape) ----

func (rt *Router) fail(w http.ResponseWriter, status int, code, format string, args ...any) {
	if sw, ok := w.(*statusWriter); ok {
		sw.code = code
	}
	if status == http.StatusConflict || status == http.StatusServiceUnavailable ||
		status == http.StatusBadGateway || status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", retryAfterSec)
	}
	writeJSON(w, status, map[string]any{"error": map[string]string{
		"code": code, "message": fmt.Sprintf(format, args...)}})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

// ---- admin and health endpoints ----

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "shardmap_version": rt.src.Version()})
}

func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	m := rt.src.Current()
	if m == nil {
		rt.fail(w, http.StatusServiceUnavailable, "no_shardmap", "no shard map installed yet")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ready", "shardmap_version": m.Version, "groups": len(m.Groups)})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rt.met.WriteText(w)
}

func (rt *Router) handleMapGet(w http.ResponseWriter, r *http.Request) {
	m := rt.src.Current()
	if m == nil {
		rt.fail(w, http.StatusNotFound, "no_shardmap", "no shard map installed yet")
		return
	}
	raw, err := EncodeMap(m)
	if err != nil {
		rt.fail(w, http.StatusInternalServerError, "internal", "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(raw)
}

// handleMapPut installs a new shard map. With ?drain=<db> it additionally
// waits (bounded by ?drain_timeout, default 10s) until no write to that
// database is in flight through this router — the reshard flow freezes a
// database, drains it here, and only then trusts the source WAL tail to be
// final.
func (rt *Router) handleMapPut(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(io.LimitReader(r.Body, maxProxyBody))
	if err != nil {
		rt.fail(w, http.StatusBadRequest, "bad_request", "read body: %v", err)
		return
	}
	m, err := DecodeMap(raw)
	if err != nil {
		rt.fail(w, http.StatusBadRequest, "bad_shardmap", "%v", err)
		return
	}
	if err := rt.src.Install(m); err != nil {
		rt.fail(w, http.StatusConflict, "stale_shardmap", "%v", err)
		return
	}
	drained := true
	if db := r.URL.Query().Get("drain"); db != "" {
		timeout := 10 * time.Second
		if v := r.URL.Query().Get("drain_timeout"); v != "" {
			if d, err := time.ParseDuration(v); err == nil && d > 0 {
				timeout = d
			}
		}
		drained = rt.drainWrites(r.Context(), db, timeout)
	}
	rt.log.Info("shard map installed", "version", m.Version, "groups", len(m.Groups),
		"frozen", m.Frozen, "drained", drained)
	writeJSON(w, http.StatusOK, map[string]any{"version": m.Version, "drained": drained})
}

func (rt *Router) drainWrites(ctx context.Context, db string, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		rt.writesMu.Lock()
		n := rt.writes[db]
		rt.writesMu.Unlock()
		if n == 0 {
			return true
		}
		if time.Now().After(deadline) || ctx.Err() != nil {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// ---- single-shard proxying ----

func (rt *Router) liveMap(w http.ResponseWriter) *Map {
	m := rt.src.Current()
	if m == nil {
		rt.fail(w, http.StatusServiceUnavailable, "no_shardmap", "router has no shard map yet")
	}
	return m
}

func (rt *Router) owner(w http.ResponseWriter, m *Map, db string) *Group {
	g, err := m.Owner(db)
	if err != nil {
		rt.fail(w, http.StatusInternalServerError, "internal", "%v", err)
		return nil
	}
	return g
}

// handleWrite proxies a mutation to the owner group's primary. No failover:
// there is exactly one writable daemon per group, and surfacing a retryable
// 502 beats guessing.
func (rt *Router) handleWrite(w http.ResponseWriter, r *http.Request) {
	reqStart := time.Now()
	sw, r, tr, root := rt.beginTrace(w, r)
	db := r.PathValue("name")
	var body []byte
	defer func() { rt.finishTrace(sw, tr, root, routerEndpoint(r), db, reqStart, body) }()
	m := rt.liveMap(sw)
	if m == nil {
		return
	}
	if m.IsFrozen(db) {
		rt.fail(sw, http.StatusConflict, "resharding",
			"database %q is being resharded; retry shortly", db)
		return
	}
	g := rt.owner(sw, m, db)
	if g == nil {
		return
	}
	body, ok := rt.readBody(sw, r)
	if !ok {
		return
	}
	rt.writesMu.Lock()
	rt.writes[db]++
	rt.writesMu.Unlock()
	defer func() {
		rt.writesMu.Lock()
		rt.writes[db]--
		rt.writesMu.Unlock()
	}()
	start := time.Now()
	fctx, sp := obs.StartSpan(r.Context(), "forward "+g.Primary)
	err := rt.forward(sw, r.WithContext(fctx), m, g.Name, g.Primary, body, false)
	sp.End()
	rt.mProxy.Observe(time.Since(start).Seconds())
	if err != nil {
		rt.markBad(g.Primary)
		rt.fail(sw, http.StatusBadGateway, "primary_unreachable",
			"group %s primary: %v", g.Name, err)
	}
}

// handleRead proxies a query to the owner group, balancing across its
// endpoints and failing over on transport errors.
func (rt *Router) handleRead(w http.ResponseWriter, r *http.Request) {
	reqStart := time.Now()
	sw, r, tr, root := rt.beginTrace(w, r)
	db := r.PathValue("name")
	var body []byte
	defer func() { rt.finishTrace(sw, tr, root, routerEndpoint(r), db, reqStart, body) }()
	m := rt.liveMap(sw)
	if m == nil {
		return
	}
	g := rt.owner(sw, m, db)
	if g == nil {
		return
	}
	body, ok := rt.readBody(sw, r)
	if !ok {
		return
	}
	start := time.Now()
	defer func() { rt.mProxy.Observe(time.Since(start).Seconds()) }()
	var lastErr error
	for i, ep := range rt.readOrder(g) {
		if i > 0 {
			rt.mFailovers.Inc()
			tr.Add("router_failovers", 1)
		}
		fctx, sp := obs.StartSpan(r.Context(), "forward "+ep)
		err := rt.forward(sw, r.WithContext(fctx), m, g.Name, ep, body, false)
		sp.End()
		if err == nil {
			return
		}
		rt.markBad(ep)
		lastErr = err
	}
	rt.fail(sw, http.StatusServiceUnavailable, "no_healthy_endpoints",
		"group %s: %v", g.Name, lastErr)
}

// handleWatch proxies a watch stream to the owner group, flushing frames as
// they arrive. The stream is registered so a shard-map flip that moves the
// database cuts it; the client's watch loop reconnects and re-routes.
func (rt *Router) handleWatch(w http.ResponseWriter, r *http.Request) {
	reqStart := time.Now()
	sw, r, tr, root := rt.beginTrace(w, r)
	db := r.PathValue("name")
	var body []byte
	defer func() { rt.finishTrace(sw, tr, root, "watch", db, reqStart, body) }()
	m := rt.liveMap(sw)
	if m == nil {
		return
	}
	g := rt.owner(sw, m, db)
	if g == nil {
		return
	}
	body, ok := rt.readBody(sw, r)
	if !ok {
		return
	}
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	ps := &proxiedStream{db: db, cancel: cancel}
	rt.streamsMu.Lock()
	rt.streams[ps] = struct{}{}
	rt.streamsMu.Unlock()
	rt.mStreams.Add(1)
	defer func() {
		rt.streamsMu.Lock()
		delete(rt.streams, ps)
		rt.streamsMu.Unlock()
		rt.mStreams.Add(-1)
	}()

	var lastErr error
	for i, ep := range rt.readOrder(g) {
		if i > 0 {
			rt.mFailovers.Inc()
			tr.Add("router_failovers", 1)
		}
		fctx, sp := obs.StartSpan(ctx, "forward "+ep)
		err := rt.forward(sw, r.WithContext(fctx), m, g.Name, ep, body, true)
		sp.End()
		if err == nil {
			return
		}
		rt.markBad(ep)
		lastErr = err
	}
	rt.fail(sw, http.StatusServiceUnavailable, "no_healthy_endpoints",
		"group %s: %v", g.Name, lastErr)
}

// Close cancels every proxied watch stream, so a graceful HTTP shutdown
// is not held open by long-lived subscriptions. Clients reconnect through
// whatever router the balancer offers next.
func (rt *Router) Close() {
	rt.streamsMu.Lock()
	defer rt.streamsMu.Unlock()
	for ps := range rt.streams {
		ps.cancel()
	}
}

// cutMovedStreams cancels proxied watch streams whose database changed
// owners between old and new, forcing their clients to reconnect against
// the new owner.
func (rt *Router) cutMovedStreams(old, new *Map) {
	if old == nil {
		return
	}
	rt.streamsMu.Lock()
	defer rt.streamsMu.Unlock()
	for ps := range rt.streams {
		og, err1 := old.Owner(ps.db)
		ng, err2 := new.Owner(ps.db)
		if err1 != nil || err2 != nil || og.Name != ng.Name {
			ps.cancel()
		}
	}
}

// readBody buffers the request body so the request can be replayed against
// another endpoint on failover.
func (rt *Router) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	if r.Body == nil {
		return nil, true
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxProxyBody+1))
	if err != nil {
		rt.fail(w, http.StatusBadRequest, "bad_request", "read body: %v", err)
		return nil, false
	}
	if len(body) > maxProxyBody {
		rt.fail(w, http.StatusRequestEntityTooLarge, "body_too_large",
			"request body exceeds %d bytes", maxProxyBody)
		return nil, false
	}
	return body, true
}

// readOrder returns the group's endpoints to try for a read: healthy ones
// first in round-robin order, then (as a last resort) the unhealthy ones —
// a probe verdict is a hint, not a ban.
func (rt *Router) readOrder(g *Group) []string {
	eps := g.Endpoints()
	rt.rrMu.Lock()
	offset := rt.rr[g.Name]
	rt.rr[g.Name] = offset + 1
	rt.rrMu.Unlock()
	rotated := make([]string, 0, len(eps))
	for i := range eps {
		rotated = append(rotated, eps[(offset+i)%len(eps)])
	}
	var healthy, suspect []string
	for _, ep := range rotated {
		if rt.isHealthy(ep) {
			healthy = append(healthy, ep)
		} else {
			suspect = append(suspect, ep)
		}
	}
	return append(healthy, suspect...)
}

// isHealthy returns the cached /readyz verdict for ep, probing when the
// cache entry expired.
func (rt *Router) isHealthy(ep string) bool {
	rt.healthMu.Lock()
	v, ok := rt.health[ep]
	rt.healthMu.Unlock()
	if ok && time.Now().Before(v.until) {
		return v.ok
	}
	ctx, cancel := context.WithTimeout(context.Background(), probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ep+"/readyz", nil)
	good := false
	if err == nil {
		if resp, err := rt.client.Do(req); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			good = resp.StatusCode == http.StatusOK
		}
	}
	rt.healthMu.Lock()
	rt.health[ep] = healthVerdict{ok: good, until: time.Now().Add(healthTTL)}
	rt.healthMu.Unlock()
	return good
}

// markBad caches a negative health verdict after a forwarding failure.
func (rt *Router) markBad(ep string) {
	rt.healthMu.Lock()
	rt.health[ep] = healthVerdict{ok: false, until: time.Now().Add(healthTTL)}
	rt.healthMu.Unlock()
}

// forward replays the incoming request against base and copies the response
// back. A non-nil error means nothing was written to w and the caller may
// retry elsewhere; once the upstream responds, its response — success or
// failure — is relayed as-is.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, m *Map, group, base string, body []byte, stream bool) error {
	url := strings.TrimSuffix(base, "/") + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	// The tenant identity rides through so the shard's admission control
	// charges the right bucket; the router itself stays tenant-agnostic.
	if key := r.Header.Get("X-Api-Key"); key != "" {
		req.Header.Set("X-Api-Key", key)
	}
	req.Header.Set("X-Funcdb-Router", fmt.Sprintf("v%d", m.Version))
	// The forward-attempt span rides the traceparent header so the shard's
	// span tree joins this trace; a no-op when tracing is disabled.
	obs.InjectTraceparent(r.Context(), req.Header)
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	rt.met.Counter("fdbrouter_requests_total",
		"Requests proxied per shard group.", "group", group).Inc()

	for _, h := range []string{"Content-Type", "X-Request-Id", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Funcdb-Shard", group)
	if tr := obs.FromContext(r.Context()); tr != nil && !stream &&
		resp.StatusCode == http.StatusOK && wantsTrace(body) {
		// The client asked for a trace: buffer the shard's response, graft
		// its span tree under this forward span, and relay the merged tree —
		// one timeline from router through shard (and, inside the shard's
		// own report, any replica it consulted).
		raw, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody))
		if err != nil {
			return err // nothing written yet; the caller may fail over
		}
		if merged, mok := mergeTraceBody(tr, obs.CurrentSpanID(r.Context()), raw); mok {
			raw = merged
		}
		w.WriteHeader(resp.StatusCode)
		w.Write(raw)
		return nil
	}
	w.WriteHeader(resp.StatusCode)
	if stream {
		fw := &flushWriter{w: w}
		io.Copy(fw, resp.Body)
		return nil
	}
	if resp.StatusCode >= 400 {
		// Buffer the (small) error envelope and lift the shard's machine
		// code onto the response writer, so the router's flight-recorder
		// entry classifies a proxied budget kill or shed exactly like the
		// shard's own — not as a generic error.
		raw, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody))
		if err == nil {
			if sw, ok := w.(*statusWriter); ok && sw.code == "" {
				sw.code = errorCode(raw)
			}
			w.Write(raw)
			return nil
		}
	}
	io.Copy(w, resp.Body)
	return nil
}

type flushWriter struct {
	w http.ResponseWriter
}

func (f *flushWriter) Write(p []byte) (int, error) {
	n, err := f.w.Write(p)
	if fl, ok := f.w.(http.Flusher); ok {
		fl.Flush()
	}
	return n, err
}

// ---- scatter-gather ----

type shardFailure struct {
	Group string `json:"group"`
	Error string `json:"error"`
}

type shardResult struct {
	group string
	raw   []byte
	err   error
}

// scatter runs fn against one healthy endpoint of every group concurrently,
// each leg bounded by the router's per-shard deadline, and returns results
// in group order.
func (rt *Router) scatter(ctx context.Context, m *Map, fn func(ctx context.Context, g *Group, ep string) ([]byte, error)) []shardResult {
	results := make([]shardResult, len(m.Groups))
	var wg sync.WaitGroup
	for i := range m.Groups {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g := &m.Groups[i]
			legCtx, cancel := context.WithTimeout(ctx, rt.timeout)
			defer cancel()
			var raw []byte
			var err error
			for _, ep := range rt.readOrder(g) {
				raw, err = fn(legCtx, g, ep)
				if err == nil {
					break
				}
				rt.markBad(ep)
				if legCtx.Err() != nil {
					break
				}
			}
			results[i] = shardResult{group: g.Name, raw: raw, err: err}
		}(i)
	}
	wg.Wait()
	return results
}

func (rt *Router) shardGET(ctx context.Context, ep, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimSuffix(ep, "/")+path, nil)
	if err != nil {
		return nil, err
	}
	return rt.shardDo(req)
}

func (rt *Router) shardPOST(ctx context.Context, ep, path string, body []byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, strings.TrimSuffix(ep, "/")+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return rt.shardDo(req)
}

func (rt *Router) shardDo(req *http.Request) ([]byte, error) {
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var env struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if json.Unmarshal(raw, &env) == nil && env.Error.Code != "" {
			return nil, fmt.Errorf("%s: %s", env.Error.Code, env.Error.Message)
		}
		return nil, fmt.Errorf("http %d", resp.StatusCode)
	}
	return raw, nil
}

// handleListDBs merges GET /v1/dbs from every group. Groups that fail
// within the per-shard deadline are reported in the partial-failure
// envelope; the rest of the catalog still lists.
func (rt *Router) handleListDBs(w http.ResponseWriter, r *http.Request) {
	m := rt.liveMap(w)
	if m == nil {
		return
	}
	start := time.Now()
	results := rt.scatter(r.Context(), m, func(ctx context.Context, g *Group, ep string) ([]byte, error) {
		return rt.shardGET(ctx, ep, "/v1/dbs")
	})
	rt.mFanout.Observe(time.Since(start).Seconds())

	var dbs []json.RawMessage
	var failed []shardFailure
	for _, res := range results {
		if res.err != nil {
			failed = append(failed, shardFailure{Group: res.group, Error: res.err.Error()})
			continue
		}
		var body struct {
			Databases []json.RawMessage `json:"databases"`
		}
		if err := json.Unmarshal(res.raw, &body); err != nil {
			failed = append(failed, shardFailure{Group: res.group, Error: err.Error()})
			continue
		}
		dbs = append(dbs, body.Databases...)
	}
	// Merge order must not depend on which shard answered first.
	sort.Slice(dbs, func(i, j int) bool { return string(dbs[i]) < string(dbs[j]) })
	resp := map[string]any{"databases": dbs, "shardmap_version": m.Version}
	if dbs == nil {
		resp["databases"] = []json.RawMessage{}
	}
	if len(failed) > 0 {
		resp["partial"] = true
		resp["failed"] = failed
	}
	writeJSON(w, http.StatusOK, resp)
}

// crossBatchRequest is the router-only cross-database batch: each query
// names its database, the router groups them by owning shard, fans out one
// per-db batch per shard, and stitches the answers back in input order.
type crossBatchRequest struct {
	Queries []crossBatchQuery `json:"queries"`
}

type crossBatchQuery struct {
	DB    string `json:"db"`
	Query string `json:"query"`
}

type crossBatchItem struct {
	DB     string          `json:"db"`
	Query  string          `json:"query"`
	Answer *bool           `json:"answer,omitempty"`
	Error  *map[string]any `json:"error,omitempty"`
}

func (rt *Router) handleCrossBatch(w http.ResponseWriter, r *http.Request) {
	m := rt.liveMap(w)
	if m == nil {
		return
	}
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	var req crossBatchRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		rt.fail(w, http.StatusBadRequest, "bad_request", "invalid request body: %v", err)
		return
	}
	if len(req.Queries) == 0 {
		rt.fail(w, http.StatusBadRequest, "bad_request", "missing queries")
		return
	}

	// Group query indexes by database; each db fans out as one per-db
	// batch against its owner group.
	byDB := make(map[string][]int)
	items := make([]crossBatchItem, len(req.Queries))
	for i, q := range req.Queries {
		items[i] = crossBatchItem{DB: q.DB, Query: q.Query}
		if q.DB == "" {
			items[i].Error = &map[string]any{"code": "bad_request", "message": "missing db"}
			continue
		}
		byDB[q.DB] = append(byDB[q.DB], i)
	}

	start := time.Now()
	var wg sync.WaitGroup
	var mu sync.Mutex
	failedGroups := make(map[string]string)
	for db, idxs := range byDB {
		wg.Add(1)
		go func(db string, idxs []int) {
			defer wg.Done()
			g, err := m.Owner(db)
			if err != nil {
				rt.setBatchError(items, idxs, "internal", err.Error(), &mu)
				return
			}
			queries := make([]string, len(idxs))
			for j, i := range idxs {
				queries[j] = req.Queries[i].Query
			}
			payload, _ := json.Marshal(map[string]any{"queries": queries})
			legCtx, cancel := context.WithTimeout(r.Context(), rt.timeout)
			defer cancel()
			var raw []byte
			for _, ep := range rt.readOrder(g) {
				raw, err = rt.shardPOST(legCtx, ep, "/v1/db/"+db+"/batch", payload)
				if err == nil {
					break
				}
				rt.markBad(ep)
				if legCtx.Err() != nil {
					break
				}
			}
			if err != nil {
				rt.setBatchError(items, idxs, "shard_unavailable", err.Error(), &mu)
				mu.Lock()
				failedGroups[g.Name] = err.Error()
				mu.Unlock()
				return
			}
			var resp struct {
				Results []struct {
					Answer bool            `json:"answer"`
					Error  *map[string]any `json:"error"`
				} `json:"results"`
			}
			if err := json.Unmarshal(raw, &resp); err != nil || len(resp.Results) != len(idxs) {
				rt.setBatchError(items, idxs, "bad_upstream", "malformed shard response", &mu)
				return
			}
			mu.Lock()
			for j, i := range idxs {
				if resp.Results[j].Error != nil {
					items[i].Error = resp.Results[j].Error
				} else {
					ans := resp.Results[j].Answer
					items[i].Answer = &ans
				}
			}
			mu.Unlock()
		}(db, idxs)
	}
	wg.Wait()
	rt.mFanout.Observe(time.Since(start).Seconds())

	resp := map[string]any{"results": items, "shardmap_version": m.Version}
	if len(failedGroups) > 0 {
		var failed []shardFailure
		for g, msg := range failedGroups {
			failed = append(failed, shardFailure{Group: g, Error: msg})
		}
		sort.Slice(failed, func(i, j int) bool { return failed[i].Group < failed[j].Group })
		resp["partial"] = true
		resp["failed"] = failed
	}
	writeJSON(w, http.StatusOK, resp)
}

func (rt *Router) setBatchError(items []crossBatchItem, idxs []int, code, msg string, mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
	for _, i := range idxs {
		items[i].Error = &map[string]any{"code": code, "message": msg}
	}
}
