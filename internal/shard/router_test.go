package shard

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeShard is a minimal stand-in for an fdbd daemon: it records writes,
// serves a fixed database list, answers per-db batches, and streams watch
// frames until the request context ends.
type fakeShard struct {
	name  string // for assertions: which backend served
	dbs   []string
	ready bool
	srv   *httptest.Server

	mu     sync.Mutex
	writes []string
}

func newFakeShard(t *testing.T, name string, dbs ...string) *fakeShard {
	f := &fakeShard{name: name, dbs: dbs, ready: true}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !f.ready {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /v1/dbs", func(w http.ResponseWriter, r *http.Request) {
		var infos []map[string]any
		for _, db := range f.dbs {
			infos = append(infos, map[string]any{"name": db})
		}
		writeJSON(w, http.StatusOK, map[string]any{"databases": infos})
	})
	mux.HandleFunc("GET /v1/db/{name}", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"name": r.PathValue("name"), "served_by": f.name})
	})
	mux.HandleFunc("PUT /v1/db/{name}", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		f.writes = append(f.writes, r.PathValue("name"))
		f.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]any{"name": r.PathValue("name"), "version": 1})
	})
	mux.HandleFunc("POST /v1/db/{name}/batch", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Queries []string `json:"queries"`
		}
		json.NewDecoder(r.Body).Decode(&req)
		var results []map[string]any
		for _, q := range req.Queries {
			// Answer true iff the query mentions the shard's name, so the
			// test can verify answers came from the right shard.
			results = append(results, map[string]any{"query": q, "answer": strings.Contains(q, f.name)})
		}
		writeJSON(w, http.StatusOK, map[string]any{"results": results, "version": 1})
	})
	mux.HandleFunc("POST /v1/db/{name}/watch", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		fl := w.(http.Flusher)
		fmt.Fprintf(w, "{\"type\":\"init\",\"shard\":%q}\n", f.name)
		fl.Flush()
		<-r.Context().Done()
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func routerOver(t *testing.T, m *Map) (*Router, *httptest.Server, *Source) {
	src := NewSource(m)
	t.Cleanup(func() { src.Close() })
	rt := NewRouter(src, Options{ShardTimeout: 2 * time.Second})
	srv := httptest.NewServer(rt)
	t.Cleanup(srv.Close)
	return rt, srv, src
}

func twoGroups(t *testing.T) (*fakeShard, *fakeShard, *Map) {
	a := newFakeShard(t, "a-primary", "alpha")
	b := newFakeShard(t, "b-primary", "beta")
	m := &Map{Version: 1, Groups: []Group{
		{Name: "ga", Primary: a.srv.URL},
		{Name: "gb", Primary: b.srv.URL},
	}, Overrides: map[string]string{"alpha": "ga", "beta": "gb"}}
	return a, b, m
}

func TestRouterWriteGoesToOwnerPrimary(t *testing.T) {
	a, b, m := twoGroups(t)
	_, srv, _ := routerOver(t, m)

	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/v1/db/alpha", strings.NewReader(`{}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("write status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Funcdb-Shard"); got != "ga" {
		t.Fatalf("served by group %q, want ga", got)
	}
	if len(a.writes) != 1 || a.writes[0] != "alpha" {
		t.Fatalf("group a writes: %v", a.writes)
	}
	if len(b.writes) != 0 {
		t.Fatalf("group b saw a write it does not own: %v", b.writes)
	}
}

func TestRouterFrozenWriteIs409WithRetryAfter(t *testing.T) {
	_, _, m := twoGroups(t)
	m.Frozen = []string{"alpha"}
	_, srv, _ := routerOver(t, m)

	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/v1/db/alpha", strings.NewReader(`{}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("frozen write status %d: %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("frozen 409 missing Retry-After")
	}
	if !bytes.Contains(raw, []byte(`"resharding"`)) {
		t.Fatalf("frozen 409 body %s lacks resharding code", raw)
	}
	// Reads keep serving while frozen.
	rresp, err := http.Get(srv.URL + "/v1/db/alpha")
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("frozen read status %d", rresp.StatusCode)
	}
}

func TestRouterReadFailsOverToReplica(t *testing.T) {
	a, _, _ := twoGroups(t)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // connection refused from now on
	m := &Map{Version: 1, Groups: []Group{
		{Name: "ga", Primary: dead.URL, Replicas: []string{a.srv.URL}},
	}, Overrides: map[string]string{"alpha": "ga"}}
	rt, srv, _ := routerOver(t, m)

	for i := 0; i < 3; i++ {
		resp, err := http.Get(srv.URL + "/v1/db/alpha")
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			ServedBy string `json:"served_by"`
		}
		json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || body.ServedBy != "a-primary" {
			t.Fatalf("read %d: status %d served_by %q", i, resp.StatusCode, body.ServedBy)
		}
	}
	if rt.mFailovers.Value() == 0 && !rt.isHealthy(a.srv.URL) {
		t.Fatal("neither failover nor health cache engaged")
	}
}

func TestRouterScatterGatherPartial(t *testing.T) {
	a, b, m := twoGroups(t)
	_ = a
	b.srv.Close() // group b is down
	_, srv, _ := routerOver(t, m)

	resp, err := http.Get(srv.URL + "/v1/dbs")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Databases []map[string]any `json:"databases"`
		Partial   bool             `json:"partial"`
		Failed    []shardFailure   `json:"failed"`
	}
	json.NewDecoder(resp.Body).Decode(&body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !body.Partial || len(body.Failed) != 1 || body.Failed[0].Group != "gb" {
		t.Fatalf("partial envelope wrong: partial=%v failed=%v", body.Partial, body.Failed)
	}
	if len(body.Databases) != 1 || body.Databases[0]["name"] != "alpha" {
		t.Fatalf("databases: %v", body.Databases)
	}
}

func TestRouterScatterGatherMergesAll(t *testing.T) {
	_, _, m := twoGroups(t)
	_, srv, _ := routerOver(t, m)
	resp, err := http.Get(srv.URL + "/v1/dbs")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Databases []map[string]any `json:"databases"`
		Partial   bool             `json:"partial"`
	}
	json.NewDecoder(resp.Body).Decode(&body)
	resp.Body.Close()
	if body.Partial || len(body.Databases) != 2 {
		t.Fatalf("merge wrong: %+v", body)
	}
}

func TestRouterCrossBatch(t *testing.T) {
	_, _, m := twoGroups(t)
	_, srv, _ := routerOver(t, m)
	payload := `{"queries":[
		{"db":"alpha","query":"serves a-primary?"},
		{"db":"beta","query":"serves b-primary?"},
		{"db":"alpha","query":"serves b-primary?"},
		{"db":"","query":"no db"}]}`
	resp, err := http.Post(srv.URL+"/v1/batch", "application/json", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Results []crossBatchItem `json:"results"`
	}
	json.NewDecoder(resp.Body).Decode(&body)
	resp.Body.Close()
	if len(body.Results) != 4 {
		t.Fatalf("results: %+v", body.Results)
	}
	want := []struct {
		answer *bool
		err    bool
	}{{boolp(true), false}, {boolp(true), false}, {boolp(false), false}, {nil, true}}
	for i, w := range want {
		got := body.Results[i]
		if w.err != (got.Error != nil) {
			t.Errorf("result %d: error presence %v, want %v", i, got.Error != nil, w.err)
		}
		if w.answer != nil && (got.Answer == nil || *got.Answer != *w.answer) {
			t.Errorf("result %d: answer %v, want %v", i, got.Answer, *w.answer)
		}
	}
}

func boolp(b bool) *bool { return &b }

func TestRouterWatchPassthroughAndCutOnMove(t *testing.T) {
	_, _, m := twoGroups(t)
	_, srv, src := routerOver(t, m)

	resp, err := http.Post(srv.URL+"/v1/db/alpha/watch", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch status %d", resp.StatusCode)
	}
	br := bufio.NewReader(resp.Body)
	line, err := br.ReadString('\n')
	if err != nil || !strings.Contains(line, "a-primary") {
		t.Fatalf("first frame %q err %v", line, err)
	}
	// Flip the map so alpha moves to gb: the proxied stream must be cut.
	next := m.Clone()
	next.Version = 2
	next.Overrides["alpha"] = "gb"
	if err := src.Install(next); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := br.ReadString('\n')
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("stream delivered a frame after its db moved")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream not cut after shard map flip")
	}
}

func TestRouterShardMapEndpoints(t *testing.T) {
	_, _, m := twoGroups(t)
	_, srv, _ := routerOver(t, m)

	resp, err := http.Get(srv.URL + "/v1/shardmap")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	got, err := DecodeMap(raw)
	if err != nil || got.Version != 1 {
		t.Fatalf("GET shardmap: %v %v", err, got)
	}

	next := got.Clone()
	next.Version = 2
	next.Frozen = []string{"alpha"}
	enc, _ := EncodeMap(next)
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/v1/shardmap?drain=alpha&drain_timeout=2s", bytes.NewReader(enc))
	put, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Version uint64 `json:"version"`
		Drained bool   `json:"drained"`
	}
	json.NewDecoder(put.Body).Decode(&body)
	put.Body.Close()
	if put.StatusCode != http.StatusOK || body.Version != 2 || !body.Drained {
		t.Fatalf("PUT shardmap: status %d body %+v", put.StatusCode, body)
	}

	// Stale map is refused.
	stale, _ := EncodeMap(m)
	req, _ = http.NewRequest(http.MethodPut, srv.URL+"/v1/shardmap", bytes.NewReader(stale))
	conflict, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	conflict.Body.Close()
	if conflict.StatusCode != http.StatusConflict {
		t.Fatalf("stale PUT status %d", conflict.StatusCode)
	}
}

func TestRouterUnreadyWithoutMap(t *testing.T) {
	_, srv, _ := routerOver(t, nil)
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz without map: %d", resp.StatusCode)
	}
	ask, err := http.Get(srv.URL + "/v1/db/alpha")
	if err != nil {
		t.Fatal(err)
	}
	ask.Body.Close()
	if ask.StatusCode != http.StatusServiceUnavailable || ask.Header.Get("Retry-After") == "" {
		t.Fatalf("proxy without map: %d Retry-After=%q", ask.StatusCode, ask.Header.Get("Retry-After"))
	}
}

// TestRouterShedPassthrough: an admission shed from a shard (429
// rate_limited, 503 overloaded) must reach the client unmodified — same
// status, same error code, same Retry-After — and must NOT be retried
// against another endpoint of the group: the tenant's budget is exhausted
// cluster-wide, so a replica would only shed again. The tenant's API key
// rides through to the backend so the shard charges the right bucket.
func TestRouterShedPassthrough(t *testing.T) {
	cases := []struct {
		status int
		code   string
	}{
		{http.StatusTooManyRequests, "rate_limited"},
		{http.StatusServiceUnavailable, "overloaded"},
	}
	for _, tc := range cases {
		t.Run(tc.code, func(t *testing.T) {
			var mu sync.Mutex
			hits := 0
			var seenKey string
			shed := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == "/readyz" {
					w.WriteHeader(http.StatusOK)
					return
				}
				mu.Lock()
				hits++
				seenKey = r.Header.Get("X-Api-Key")
				mu.Unlock()
				w.Header().Set("Retry-After", "7")
				writeJSON(w, tc.status, map[string]any{
					"error": map[string]any{"code": tc.code, "message": "tenant over budget"},
				})
			})
			// Both endpoints shed, so a wrongful retry shows up as hits > 1
			// no matter which endpoint round-robin picks first.
			primary := httptest.NewServer(shed)
			replica := httptest.NewServer(shed)
			t.Cleanup(primary.Close)
			t.Cleanup(replica.Close)
			m := &Map{Version: 1, Groups: []Group{
				{Name: "ga", Primary: primary.URL, Replicas: []string{replica.URL}},
			}, Overrides: map[string]string{"alpha": "ga"}}
			_, srv, _ := routerOver(t, m)

			req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/db/alpha", nil)
			req.Header.Set("X-Api-Key", "abuser")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, raw)
			}
			if got := resp.Header.Get("Retry-After"); got != "7" {
				t.Fatalf("Retry-After %q did not pass through", got)
			}
			if !bytes.Contains(raw, []byte(`"`+tc.code+`"`)) {
				t.Fatalf("shed body %s lost code %q", raw, tc.code)
			}
			mu.Lock()
			defer mu.Unlock()
			if hits != 1 {
				t.Fatalf("shed retried: %d backend requests, want 1", hits)
			}
			if seenKey != "abuser" {
				t.Fatalf("backend saw X-Api-Key %q, want abuser", seenKey)
			}
		})
	}
}
