package shard

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"funcdb/internal/core"
	"funcdb/internal/obs"
	"funcdb/internal/registry"
	"funcdb/internal/server"
)

// realShard runs an actual fdbd-style server (flight recorder on) holding a
// program database "even", so trace tests exercise true cross-process span
// merging rather than a stub.
func realShard(t *testing.T) *httptest.Server {
	t.Helper()
	reg := registry.New(core.Options{})
	if _, err := reg.PutProgram("even", []byte("Even(0).\nEven(T) -> Even(T+2).\n")); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(reg, server.Config{}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func tracedRouter(t *testing.T, m *Map) (*Router, *httptest.Server) {
	t.Helper()
	src := NewSource(m)
	t.Cleanup(func() { src.Close() })
	rt := NewRouter(src, Options{ShardTimeout: 2 * time.Second, TraceSample: 1})
	srv := httptest.NewServer(rt)
	t.Cleanup(srv.Close)
	return rt, srv
}

// TestRouterTraceMergedTree: a traced ask through the router comes back as
// ONE span tree under the client's trace ID — the router's route/forward
// spans with the shard's parse/eval spans grafted beneath the forward.
func TestRouterTraceMergedTree(t *testing.T) {
	shard := realShard(t)
	m := &Map{Version: 1, Groups: []Group{{Name: "ga", Primary: shard.URL}},
		Overrides: map[string]string{"even": "ga"}}
	_, rts := tracedRouter(t, m)

	tid, pid := obs.NewTraceID(), obs.NewSpanID()
	req, err := http.NewRequest("POST", rts.URL+"/v1/db/even/ask",
		strings.NewReader(`{"query":"?- Even(4).","trace":true}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.TraceparentHeader, obs.FormatTraceparent(tid, pid))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ask via router: %d %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != tid {
		t.Fatalf("router X-Trace-Id = %q, want adopted %q", got, tid)
	}
	var body struct {
		Answer bool        `json:"answer"`
		Trace  *obs.Report `json:"trace"`
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatalf("decode: %v in %s", err, raw)
	}
	if !body.Answer {
		t.Fatal("ask answered false")
	}
	if body.Trace == nil || body.Trace.ID != tid {
		t.Fatalf("merged trace ID = %v, want %s", body.Trace, tid)
	}

	// The tree holds the router's spans and the shard's, stitched: the
	// shard's root hangs off the router's forward span.
	byName := map[string]obs.Span{}
	byID := map[int]obs.Span{}
	var forward obs.Span
	for _, s := range body.Trace.Spans {
		byName[s.Name] = s
		byID[s.ID] = s
		if strings.HasPrefix(s.Name, "forward ") {
			forward = s
		}
	}
	if _, ok := byName["route"]; !ok {
		t.Fatalf("no router route span: %+v", body.Trace.Spans)
	}
	if forward.Name == "" {
		t.Fatalf("no forward span: %+v", body.Trace.Spans)
	}
	shardSpan, ok := byName["parse"]
	if !ok {
		t.Fatalf("no shard-side parse span in merged tree: %+v", body.Trace.Spans)
	}
	// Walk up from the shard span: it must reach the forward span.
	for hops := 0; shardSpan.Parent != 0; hops++ {
		if hops > len(body.Trace.Spans) {
			t.Fatal("parent cycle in merged tree")
		}
		shardSpan = byID[shardSpan.Parent]
		if shardSpan.ID == forward.ID {
			break
		}
	}
	if shardSpan.ID != forward.ID {
		t.Fatalf("shard spans not grafted under forward: %+v", body.Trace.Spans)
	}
}

// TestRouterDebugTracesScatter: GET /debug/traces on the router gathers the
// router's own recorder AND every shard endpoint's, tagging provenance in
// the node field; /debug/traces/{id} finds one trace wherever it lives.
func TestRouterDebugTracesScatter(t *testing.T) {
	shard := realShard(t)
	m := &Map{Version: 1, Groups: []Group{{Name: "ga", Primary: shard.URL}},
		Overrides: map[string]string{"even": "ga"}}
	_, rts := tracedRouter(t, m)

	// A traced ask (kept on both sides) and a shard-side failure.
	tid := obs.NewTraceID()
	req, _ := http.NewRequest("POST", rts.URL+"/v1/db/even/ask",
		strings.NewReader(`{"query":"?- Even(4).","trace":true}`))
	req.Header.Set(obs.TraceparentHeader, obs.FormatTraceparent(tid, obs.NewSpanID()))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	resp, err = http.Post(rts.URL+"/v1/db/even/ask", "application/json",
		strings.NewReader(`{"query":"not a query"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad ask: %d", resp.StatusCode)
	}

	resp, err = http.Get(rts.URL + "/debug/traces?n=100")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Traces  []*obs.TraceEntry `json:"traces"`
		Partial bool              `json:"partial"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if list.Partial {
		t.Fatal("scatter reported partial results over healthy shards")
	}
	var routerSeen, shardSeen, errSeen bool
	for _, e := range list.Traces {
		if e.Node == "router" {
			routerSeen = true
		} else if strings.HasPrefix(e.Node, "ga ") {
			shardSeen = true
		}
		if e.ID == tid && e.Outcome == obs.OutcomeOK {
			// the traced ask, retained via the Keep flag on both sides
		}
		if e.Outcome == obs.OutcomeError {
			errSeen = true
		}
	}
	if !routerSeen || !shardSeen || !errSeen {
		t.Fatalf("scatter coverage: router=%v shard=%v err=%v (%d entries)",
			routerSeen, shardSeen, errSeen, len(list.Traces))
	}

	// Outcome filter applies across the merged fleet view.
	resp, err = http.Get(rts.URL + "/debug/traces?outcome=error")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, e := range list.Traces {
		if e.Outcome != obs.OutcomeError {
			t.Fatalf("filter leaked outcome %q", e.Outcome)
		}
	}

	// Fetch the traced ask by ID through the router.
	resp, err = http.Get(rts.URL + "/debug/traces/" + tid)
	if err != nil {
		t.Fatal(err)
	}
	var got obs.TraceEntry
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.ID != tid || got.Report == nil {
		t.Fatalf("get by id = %+v", got)
	}

	// Unknown IDs 404 even after scattering.
	resp, err = http.Get(rts.URL + "/debug/traces/ffffffffffffffffffffffffffffffff")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id via router: %d", resp.StatusCode)
	}
}

// TestRouterTraceDisabled: a negative TraceBuffer turns router tracing off
// entirely — no X-Trace-Id, no /debug/traces routes, no trace merging (the
// shard's own trace passes through untouched).
func TestRouterTraceDisabled(t *testing.T) {
	shard := realShard(t)
	m := &Map{Version: 1, Groups: []Group{{Name: "ga", Primary: shard.URL}},
		Overrides: map[string]string{"even": "ga"}}
	src := NewSource(m)
	t.Cleanup(func() { src.Close() })
	rt := NewRouter(src, Options{ShardTimeout: 2 * time.Second, TraceBuffer: -1})
	rts := httptest.NewServer(rt)
	t.Cleanup(rts.Close)

	resp, err := http.Post(rts.URL+"/v1/db/even/ask", "application/json",
		strings.NewReader(`{"query":"?- Even(4).","trace":true}`))
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Trace *obs.Report `json:"trace"`
	}
	hdr := resp.Header.Get("X-Trace-Id")
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hdr != "" {
		t.Fatal("tracing disabled but router set X-Trace-Id")
	}
	if body.Trace == nil {
		t.Fatal("shard's opt-in trace lost")
	}
	for _, s := range body.Trace.Spans {
		if s.Name == "route" || strings.HasPrefix(s.Name, "forward ") {
			t.Fatalf("router span %q with tracing disabled", s.Name)
		}
	}
	resp, err = http.Get(rts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/traces with tracing disabled: %d", resp.StatusCode)
	}
}
