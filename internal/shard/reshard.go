package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"funcdb/internal/binspec"
	"funcdb/internal/registry"
	"funcdb/internal/store"
)

// Live resharding. Moving a database between shard groups must never lose
// a committed write and must keep readers served throughout; only writers
// may see brief, retryable 409s. The protocol:
//
//  1. Export the database from the source primary (GET /v1/db/{n}/export).
//     The export carries an LSN read before the entry, so the WAL tail
//     that follows can only re-apply mutations the export already folded
//     in — harmless under the registry's set semantics — never miss one.
//  2. PUT the exported source to the target primary, then tail the source
//     group's WAL from LSN+1, re-applying this database's mutations to the
//     target through its public API, until the stream reaches its tail.
//  3. Freeze: install shard-map v+1 with the database in Frozen on every
//     router, each with ?drain=<db> so the call returns only after that
//     router's in-flight writes for the database have finished. From this
//     point no new source-side write for the database can commit through
//     a router.
//  4. Read the source primary's LSN — the watermark — and keep tailing
//     until every mutation at or below it has been applied to the target.
//  5. Flip: install v+2 with Overrides[db]=target and the freeze lifted.
//     Routers send new writes (and reads, and watch streams) to the
//     target group. The source copy is left in place for operator-paced
//     deletion; routers never route to it again.
//
// If anything fails after the freeze, the orchestrator rolls back by
// installing a map that lifts the freeze with ownership unchanged, so a
// failed reshard degrades to a brief write stall, not an outage.

// ReshardOptions configures one Reshard run.
type ReshardOptions struct {
	// DB is the database to move; TargetGroup the destination group name.
	DB, TargetGroup string

	// Routers are the base URLs of every fdbrouter instance. Shard-map
	// updates are pushed to all of them; the current map is fetched from
	// the first that answers.
	Routers []string

	// HTTP is the client for control-plane calls; nil uses a default with
	// a 10s timeout. The WAL tail uses its own deadline-free client.
	HTTP *http.Client

	// TailTimeout bounds the post-freeze catch-up (step 4). Zero means
	// 30s. If the watermark is not reached in time the reshard rolls
	// back.
	TailTimeout time.Duration

	// DrainTimeout is passed to each router's ?drain call. Zero means the
	// router's default.
	DrainTimeout time.Duration

	// Logf receives progress notices; nil discards them.
	Logf func(format string, args ...any)
}

// ReshardResult reports what a completed Reshard did.
type ReshardResult struct {
	// From and To are the source and destination group names.
	From, To string
	// ExportLSN is the WAL position the snapshot captured; Watermark the
	// position the catch-up tail had to reach after the freeze.
	ExportLSN, Watermark uint64
	// Replayed counts WAL mutations re-applied to the target.
	Replayed int
	// Map is the final installed shard map.
	Map *Map
}

// Reshard moves one database to another shard group, live. It returns the
// final shard map on success; on failure after the freeze point it rolls
// the freeze back before returning the error.
func Reshard(ctx context.Context, opts ReshardOptions) (*ReshardResult, error) {
	r, err := newResharder(opts)
	if err != nil {
		return nil, err
	}
	return r.run(ctx)
}

type resharder struct {
	opts   ReshardOptions
	httpc  *http.Client // control-plane calls
	stream *http.Client // WAL tail: no overall timeout
	logf   func(string, ...any)

	m      *Map
	source *Group
	target *Group
}

func newResharder(opts ReshardOptions) (*resharder, error) {
	if opts.DB == "" || opts.TargetGroup == "" {
		return nil, errors.New("reshard: database and target group are required")
	}
	if len(opts.Routers) == 0 {
		return nil, errors.New("reshard: at least one router URL is required")
	}
	if opts.TailTimeout <= 0 {
		opts.TailTimeout = 30 * time.Second
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	httpc := opts.HTTP
	if httpc == nil {
		httpc = &http.Client{Timeout: 10 * time.Second}
	}
	return &resharder{opts: opts, httpc: httpc, stream: &http.Client{}, logf: logf}, nil
}

func (r *resharder) run(ctx context.Context) (*ReshardResult, error) {
	if err := r.loadMap(ctx); err != nil {
		return nil, err
	}
	src, err := r.m.Owner(r.opts.DB)
	if err != nil {
		return nil, fmt.Errorf("reshard: %w", err)
	}
	tgt, ok := r.m.GroupNamed(r.opts.TargetGroup)
	if !ok {
		return nil, fmt.Errorf("reshard: no group %q in shard map v%d", r.opts.TargetGroup, r.m.Version)
	}
	if src.Name == tgt.Name {
		return nil, fmt.Errorf("reshard: %q already lives on group %q", r.opts.DB, src.Name)
	}
	if r.m.IsFrozen(r.opts.DB) {
		return nil, fmt.Errorf("reshard: %q is frozen in shard map v%d — another reshard in progress?", r.opts.DB, r.m.Version)
	}
	r.source, r.target = src, tgt
	r.logf("reshard: moving %q from group %s to group %s (map v%d)",
		r.opts.DB, src.Name, tgt.Name, r.m.Version)

	// Step 1+2: snapshot-ship, then open the WAL tail and drain it to the
	// stream's current head before freezing anything.
	exp, err := r.export(ctx)
	if err != nil {
		return nil, err
	}
	if err := r.install(ctx, exp); err != nil {
		return nil, err
	}
	tailCtx, cancelTail := context.WithCancel(ctx)
	defer cancelTail()
	tail, err := r.openTail(tailCtx, exp.LSN+1)
	if err != nil {
		return nil, err
	}
	defer tail.Close()
	replayed, err := tail.drainToHead(ctx, r)
	if err != nil {
		return nil, fmt.Errorf("reshard: pre-freeze catch-up: %w", err)
	}
	r.logf("reshard: pre-copy done at lsn %d (%d mutations replayed)", tail.seen, replayed)

	// Step 3: freeze writes on every router, draining in-flight ones.
	frozen := r.frozenMap()
	if err := r.pushMap(ctx, frozen, true); err != nil {
		return nil, fmt.Errorf("reshard: freeze: %w", err)
	}
	r.m = frozen

	// Steps 4–5 can fail after the freeze; roll the freeze back if so.
	res, err := r.cutOver(ctx, exp, tail, replayed)
	if err != nil {
		r.rollback(err)
		return nil, err
	}
	return res, nil
}

// cutOver runs the post-freeze half: reach the watermark, flip ownership.
func (r *resharder) cutOver(ctx context.Context, exp *exportDoc, tail *walTail, replayed int) (*ReshardResult, error) {
	watermark, err := r.sourceLSN(ctx)
	if err != nil {
		return nil, fmt.Errorf("read watermark: %w", err)
	}
	r.logf("reshard: frozen; catch-up watermark is lsn %d", watermark)
	wctx, cancel := context.WithTimeout(ctx, r.opts.TailTimeout)
	defer cancel()
	n, err := tail.drainToLSN(wctx, r, watermark)
	replayed += n
	if err != nil {
		return nil, fmt.Errorf("catch-up to lsn %d: %w", watermark, err)
	}

	final := r.flippedMap()
	if err := r.pushMap(ctx, final, false); err != nil {
		return nil, fmt.Errorf("flip: %w", err)
	}
	r.m = final
	r.logf("reshard: done — %q now owned by group %s (map v%d)",
		r.opts.DB, r.target.Name, final.Version)
	return &ReshardResult{
		From: r.source.Name, To: r.target.Name,
		ExportLSN: exp.LSN, Watermark: watermark,
		Replayed: replayed, Map: final,
	}, nil
}

// rollback lifts the freeze with ownership unchanged. Best-effort: run
// under a fresh context so cancellation of the main one cannot strand the
// catalog frozen.
func (r *resharder) rollback(cause error) {
	r.logf("reshard: failed after freeze (%v); rolling back", cause)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	undo := r.m.Clone()
	undo.Version++
	undo.Frozen = without(undo.Frozen, r.opts.DB)
	if err := r.pushMap(ctx, undo, false); err != nil {
		r.logf("reshard: ROLLBACK FAILED, %q may be stuck frozen: %v", r.opts.DB, err)
	}
}

// frozenMap is the current map plus the moving database in Frozen.
func (r *resharder) frozenMap() *Map {
	m := r.m.Clone()
	m.Version++
	m.Frozen = append(without(m.Frozen, r.opts.DB), r.opts.DB)
	return m
}

// flippedMap is the frozen map with ownership pinned to the target and the
// freeze lifted.
func (r *resharder) flippedMap() *Map {
	m := r.m.Clone()
	m.Version++
	m.Frozen = without(m.Frozen, r.opts.DB)
	if m.Overrides == nil {
		m.Overrides = make(map[string]string)
	}
	m.Overrides[r.opts.DB] = r.target.Name
	return m
}

func without(ss []string, drop string) []string {
	out := ss[:0:0]
	for _, s := range ss {
		if s != drop {
			out = append(out, s)
		}
	}
	return out
}

// --- control-plane HTTP ---

func (r *resharder) loadMap(ctx context.Context) error {
	var lastErr error
	for _, base := range r.opts.Routers {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/shardmap", nil)
		if err != nil {
			return err
		}
		resp, err := r.httpc.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		raw, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			lastErr = fmt.Errorf("GET %s/v1/shardmap: %s", base, httpErrorDetail(resp.StatusCode, raw))
			continue
		}
		m, err := DecodeMap(raw)
		if err != nil {
			lastErr = fmt.Errorf("shard map from %s: %w", base, err)
			continue
		}
		r.m = m
		return nil
	}
	return fmt.Errorf("reshard: no router produced a shard map: %w", lastErr)
}

// pushMap installs m on every router. All must accept: a router left on
// the old map would keep routing writes to the old owner. drain adds
// ?drain=<db> so each router finishes in-flight writes before answering.
func (r *resharder) pushMap(ctx context.Context, m *Map, drain bool) error {
	raw, err := EncodeMap(m)
	if err != nil {
		return err
	}
	for _, base := range r.opts.Routers {
		url := base + "/v1/shardmap"
		if drain {
			url += "?drain=" + r.opts.DB
			if r.opts.DrainTimeout > 0 {
				url += "&drain_timeout=" + r.opts.DrainTimeout.String()
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, url, bytes.NewReader(raw))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := r.httpc.Do(req)
		if err != nil {
			return fmt.Errorf("router %s: %w", base, err)
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("router %s rejected map v%d: %s",
				base, m.Version, httpErrorDetail(resp.StatusCode, body))
		}
	}
	return nil
}

type exportDoc struct {
	Name    string `json:"name"`
	Kind    string `json:"kind"`
	Version uint64 `json:"version"`
	LSN     uint64 `json:"lsn"`
	Source  string `json:"source"`
}

func (r *resharder) export(ctx context.Context) (*exportDoc, error) {
	var exp exportDoc
	err := r.jsonCall(ctx, http.MethodGet,
		r.source.Primary+"/v1/db/"+r.opts.DB+"/export", nil, &exp)
	if err != nil {
		return nil, fmt.Errorf("reshard: export from %s: %w", r.source.Name, err)
	}
	r.logf("reshard: exported %q (kind %s, version %d) at lsn %d",
		exp.Name, exp.Kind, exp.Version, exp.LSN)
	return &exp, nil
}

// install publishes the exported source on the target primary.
func (r *resharder) install(ctx context.Context, exp *exportDoc) error {
	err := r.rawCall(ctx, http.MethodPut,
		r.target.Primary+"/v1/db/"+r.opts.DB, []byte(exp.Source))
	if err != nil {
		return fmt.Errorf("reshard: install on %s: %w", r.target.Name, err)
	}
	return nil
}

func (r *resharder) sourceLSN(ctx context.Context) (uint64, error) {
	var out struct {
		LSN uint64 `json:"lsn"`
	}
	err := r.jsonCall(ctx, http.MethodGet, r.source.Primary+"/v1/repl/lsn", nil, &out)
	return out.LSN, err
}

// apply re-executes one source-side mutation against the target primary
// through its public API. The target assigns its own versions and LSNs;
// only the catalog contents are replicated.
func (r *resharder) apply(ctx context.Context, m registry.Mutation) error {
	base := r.target.Primary + "/v1/db/" + r.opts.DB
	switch m.Op {
	case registry.OpPut:
		return r.rawCall(ctx, http.MethodPut, base, m.Payload)
	case registry.OpExtend:
		return r.jsonCall(ctx, http.MethodPost, base+"/facts",
			map[string]string{"facts": string(m.Payload)}, nil)
	case registry.OpDelete:
		// Deleting the database mid-move is legal; the reshard then moves
		// an absent database, which is still a correct outcome.
		err := r.rawCall(ctx, http.MethodDelete, base, nil)
		var he *httpError
		if errors.As(err, &he) && he.status == http.StatusNotFound {
			return nil
		}
		return err
	}
	return fmt.Errorf("unknown mutation op %d", m.Op)
}

type httpError struct {
	status int
	detail string
}

func (e *httpError) Error() string { return e.detail }

func httpErrorDetail(status int, body []byte) string {
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if json.Unmarshal(body, &env) == nil && env.Error.Message != "" {
		return fmt.Sprintf("%d %s: %s", status, env.Error.Code, env.Error.Message)
	}
	return fmt.Sprintf("status %d", status)
}

func (r *resharder) jsonCall(ctx context.Context, method, url string, in, out any) error {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := r.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return &httpError{status: resp.StatusCode, detail: httpErrorDetail(resp.StatusCode, raw)}
	}
	if out != nil {
		return json.Unmarshal(raw, out)
	}
	return nil
}

func (r *resharder) rawCall(ctx context.Context, method, url string, body []byte) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return err
	}
	resp, err := r.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode/100 != 2 {
		return &httpError{status: resp.StatusCode, detail: httpErrorDetail(resp.StatusCode, raw)}
	}
	return nil
}

// --- WAL tail ---

// walTail is one long-lived GET /v1/repl/wal stream from the source
// primary, decoded frame by frame.
type walTail struct {
	resp *http.Response
	seen uint64 // highest mutation LSN consumed
	head uint64 // primary's LastLSN as of the latest frame
}

func (r *resharder) openTail(ctx context.Context, from uint64) (*walTail, error) {
	url := fmt.Sprintf("%s/v1/repl/wal?from=%d", r.source.Primary, from)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.stream.Do(req)
	if err != nil {
		return nil, fmt.Errorf("reshard: open WAL tail: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		return nil, fmt.Errorf("reshard: WAL tail from %s: %s",
			r.source.Name, httpErrorDetail(resp.StatusCode, raw))
	}
	return &walTail{resp: resp, seen: from - 1}, nil
}

func (t *walTail) Close() { t.resp.Body.Close() }

// next reads one frame, folding mutations for the moving database into the
// target via r.apply. It returns how many mutations it applied (0 or 1)
// and whether the frame was a heartbeat.
func (t *walTail) next(ctx context.Context, r *resharder) (applied int, heartbeat bool, err error) {
	rec, err := binspec.ReadRecord(t.resp.Body)
	if err != nil {
		return 0, false, fmt.Errorf("WAL stream read: %w", err)
	}
	f, err := binspec.DecodeFrame(rec)
	if err != nil {
		return 0, false, err
	}
	if f.PrimaryLast > t.head {
		t.head = f.PrimaryLast
	}
	if f.Kind != binspec.FrameMutation {
		return 0, true, nil
	}
	lsn, m, err := store.DecodeMutationRecord(f.Record)
	if err != nil {
		return 0, false, err
	}
	t.seen = lsn
	if m.Name != r.opts.DB {
		return 0, false, nil
	}
	if err := r.apply(ctx, m); err != nil {
		return 0, false, fmt.Errorf("replay lsn %d (%v %s): %w", lsn, m.Op, m.Name, err)
	}
	return 1, false, nil
}

// drainToHead consumes the stream until it reaches the primary's current
// tail — signalled by a heartbeat, or by the consumed LSN catching the
// head position frames advertise.
func (t *walTail) drainToHead(ctx context.Context, r *resharder) (applied int, err error) {
	for {
		n, hb, err := t.next(ctx, r)
		applied += n
		if err != nil {
			return applied, err
		}
		if hb || t.seen >= t.head {
			return applied, nil
		}
	}
}

// drainToLSN consumes the stream until every mutation at or below
// watermark has been seen (and, for the moving database, applied).
func (t *walTail) drainToLSN(ctx context.Context, r *resharder, watermark uint64) (applied int, err error) {
	for t.seen < watermark {
		if err := ctx.Err(); err != nil {
			return applied, err
		}
		n, _, err := t.next(ctx, r)
		applied += n
		if err != nil {
			return applied, err
		}
	}
	return applied, nil
}
