package shard

import (
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"strings"
)

// wireMap is the JSON envelope of a shard map on disk and on the
// /v1/shardmap endpoints. The format field guards against feeding some
// other JSON file to the router; bumping it is a wire-breaking change.
type wireMap struct {
	Format string `json:"format"`
	*Map
}

// FormatV1 is the current shard-map wire format identifier.
const FormatV1 = "funcdb-shardmap/v1"

// EncodeMap renders m as indented JSON in the versioned wire envelope.
func EncodeMap(m *Map) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	raw, err := json.MarshalIndent(wireMap{Format: FormatV1, Map: m}, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(raw, '\n'), nil
}

// DecodeMap parses and validates a wire-format shard map and materializes
// its ring, so the result is immediately safe for concurrent readers.
func DecodeMap(raw []byte) (*Map, error) {
	var w wireMap
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return nil, fmt.Errorf("shard: parse map: %w", err)
	}
	if w.Format != FormatV1 {
		return nil, fmt.Errorf("shard: unknown map format %q (want %q)", w.Format, FormatV1)
	}
	if w.Map == nil {
		return nil, fmt.Errorf("shard: map body missing")
	}
	if err := w.Map.Validate(); err != nil {
		return nil, err
	}
	w.Map.Ring()
	return w.Map, nil
}

// LoadFile reads and validates a shard map from a JSON file.
func LoadFile(path string) (*Map, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := DecodeMap(raw)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// WriteFile atomically writes m to path in the wire format.
func WriteFile(path string, m *Map) error {
	raw, err := EncodeMap(m)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Validate checks structural invariants: a positive version, at least one
// group, unique non-empty group names, parseable http(s) endpoint URLs,
// and overrides/frozen entries that reference known groups.
func (m *Map) Validate() error {
	if m.Version == 0 {
		return fmt.Errorf("shard: map version must be positive")
	}
	if len(m.Groups) == 0 {
		return fmt.Errorf("shard: map v%d has no groups", m.Version)
	}
	if m.VNodes < 0 {
		return fmt.Errorf("shard: negative vnodes")
	}
	seen := make(map[string]bool, len(m.Groups))
	for _, g := range m.Groups {
		if g.Name == "" {
			return fmt.Errorf("shard: group with empty name")
		}
		if seen[g.Name] {
			return fmt.Errorf("shard: duplicate group name %q", g.Name)
		}
		seen[g.Name] = true
		for _, ep := range g.Endpoints() {
			u, err := url.Parse(ep)
			if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
				return fmt.Errorf("shard: group %q has invalid endpoint %q", g.Name, ep)
			}
		}
	}
	for db, gname := range m.Overrides {
		if !seen[gname] {
			return fmt.Errorf("shard: override %q -> unknown group %q", db, gname)
		}
	}
	return nil
}
