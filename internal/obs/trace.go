// Package obs is funcdb's observability layer: a lightweight span/trace
// facility, a Prometheus-text-exposition metrics registry, and cumulative
// engine counters. It has no dependencies outside the standard library and
// is designed so that the disabled paths cost almost nothing: tracing costs
// one context lookup per instrumentation site when no trace is attached,
// and the engine counter sink can be swapped for a nil no-op.
package obs

import (
	"context"
	"sync"
	"time"
)

// maxSpans bounds how many spans a single trace retains. A pathological
// query (thousands of fixpoint rounds) would otherwise balloon the response;
// spans past the cap are dropped and counted in Report.DroppedSpans.
const maxSpans = 512

// Span is one finished (or still-open) timed region of a trace. StartUS is
// the offset from the trace's start on the monotonic clock; Parent is the ID
// of the enclosing span, 0 for top-level spans.
type Span struct {
	ID      int    `json:"id"`
	Parent  int    `json:"parent,omitempty"`
	Name    string `json:"name"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
}

// Trace collects the spans and counters of one request. All methods are safe
// for concurrent use: batch queries fan out to a worker pool, and every
// worker records into the same trace.
type Trace struct {
	id    string
	start time.Time

	mu           sync.Mutex
	spans        []Span
	nextID       int
	dropped      int
	counters     map[string]int64
	remoteParent string
}

// NewTrace starts a new trace with a fresh W3C-shaped ID and the current
// monotonic time as its origin. IDs come from the seeded per-process
// counter+PRNG in id.go, not crypto/rand — see the commentary there.
func NewTrace() *Trace {
	return &Trace{
		id:     NewTraceID(),
		start:  time.Now(),
		nextID: 1,
	}
}

// ID returns the trace's hex identifier.
func (t *Trace) ID() string { return t.id }

// Elapsed returns the time since the trace began, on the monotonic clock.
func (t *Trace) Elapsed() time.Duration { return time.Since(t.start) }

// Add increments a named trace counter. Zero deltas are dropped so callers
// can pass raw deltas unconditionally.
func (t *Trace) Add(name string, n int64) {
	if t == nil || n == 0 {
		return
	}
	t.mu.Lock()
	if t.counters == nil {
		t.counters = make(map[string]int64, 8)
	}
	t.counters[name] += n
	t.mu.Unlock()
}

// SetMax raises a named trace counter to v if v is larger than its current
// value — used for high-water quantities such as derivation depth.
func (t *Trace) SetMax(name string, v int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.counters == nil {
		t.counters = make(map[string]int64, 8)
	}
	if v > t.counters[name] {
		t.counters[name] = v
	}
	t.mu.Unlock()
}

// SpanHandle ends a span started with StartSpan. A nil handle is valid and
// all its methods are no-ops, so call sites never need to check whether
// tracing is enabled.
type SpanHandle struct {
	t   *Trace
	idx int
	id  int
}

// End records the span's duration. Safe to call on a nil handle.
func (h *SpanHandle) End() {
	if h == nil {
		return
	}
	t := h.t
	el := int64(t.Elapsed() / time.Microsecond)
	t.mu.Lock()
	t.spans[h.idx].DurUS = el - t.spans[h.idx].StartUS
	t.mu.Unlock()
}

// traceCtxKey carries the trace and the current span ID through a context.
type traceCtxKey struct{}

type traceCtx struct {
	t      *Trace
	spanID int
}

// WithTrace attaches a trace to ctx. Spans started from the returned context
// are recorded as top-level spans of t.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, traceCtx{t: t})
}

// FromContext returns the trace attached to ctx, or nil. This is the only
// cost tracing adds to an untraced request: one context value lookup per
// instrumentation site.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	tc, _ := ctx.Value(traceCtxKey{}).(traceCtx)
	return tc.t
}

// StartSpan opens a named span under the current span of ctx's trace. When
// ctx carries no trace (the common case) it returns ctx unchanged and a nil
// handle, whose End is a no-op. The returned context makes the new span the
// parent of any spans started from it.
func StartSpan(ctx context.Context, name string) (context.Context, *SpanHandle) {
	if ctx == nil {
		return ctx, nil
	}
	tc, ok := ctx.Value(traceCtxKey{}).(traceCtx)
	if !ok || tc.t == nil {
		return ctx, nil
	}
	h := tc.t.startSpan(name, tc.spanID)
	if h == nil {
		return ctx, nil // span cap reached; children attach to the old parent
	}
	return context.WithValue(ctx, traceCtxKey{}, traceCtx{t: tc.t, spanID: h.id}), h
}

// Add increments a counter on ctx's trace, if any.
func Add(ctx context.Context, name string, n int64) {
	if ctx == nil {
		return
	}
	FromContext(ctx).Add(name, n)
}

// SetMax raises a high-water counter on ctx's trace, if any.
func SetMax(ctx context.Context, name string, v int64) {
	if ctx == nil {
		return
	}
	FromContext(ctx).SetMax(name, v)
}

func (t *Trace) startSpan(name string, parent int) *SpanHandle {
	start := int64(t.Elapsed() / time.Microsecond)
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= maxSpans {
		t.dropped++
		return nil
	}
	id := t.nextID
	t.nextID++
	t.spans = append(t.spans, Span{ID: id, Parent: parent, Name: name, StartUS: start, DurUS: -1})
	return &SpanHandle{t: t, idx: len(t.spans) - 1, id: id}
}

// Report is the JSON shape of a finished trace, embedded in query responses
// under the "trace" key.
type Report struct {
	ID           string           `json:"id"`
	DurUS        int64            `json:"dur_us"`
	Spans        []Span           `json:"spans"`
	Counters     map[string]int64 `json:"counters,omitempty"`
	DroppedSpans int              `json:"dropped_spans,omitempty"`
	RemoteParent string           `json:"remote_parent,omitempty"`
}

// Report snapshots the trace. Spans still open are reported with the
// duration they have accumulated so far.
func (t *Trace) Report() *Report {
	if t == nil {
		return nil
	}
	el := int64(t.Elapsed() / time.Microsecond)
	t.mu.Lock()
	defer t.mu.Unlock()
	spans := make([]Span, len(t.spans))
	copy(spans, t.spans)
	for i := range spans {
		if spans[i].DurUS < 0 {
			spans[i].DurUS = el - spans[i].StartUS
		}
	}
	var counters map[string]int64
	if len(t.counters) > 0 {
		counters = make(map[string]int64, len(t.counters))
		for k, v := range t.counters {
			counters[k] = v
		}
	}
	return &Report{
		ID:           t.id,
		DurUS:        el,
		Spans:        spans,
		Counters:     counters,
		DroppedSpans: t.dropped,
		RemoteParent: t.remoteParent,
	}
}
