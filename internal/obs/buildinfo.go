package obs

import (
	"runtime"
	"runtime/debug"
)

// RegisterBuildInfo registers the conventional build-info gauge: a constant
// 1 whose labels identify the running binary. Both fdbd and fdbrouter expose
// it under the shared funcdbd_build_info family, distinguished by the
// program label, so one scrape config can inventory a mixed fleet.
func RegisterBuildInfo(reg *Registry, program, version string) {
	if reg == nil {
		return
	}
	if version == "" {
		version = "devel"
		if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			version = bi.Main.Version
		}
	}
	reg.Gauge("funcdbd_build_info",
		"Build metadata of the running binary; value is always 1.",
		"program", program,
		"version", version,
		"goversion", runtime.Version(),
		"goos", runtime.GOOS,
		"goarch", runtime.GOARCH,
	).Set(1)
}
