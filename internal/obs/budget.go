package obs

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// Per-query evaluation budgets ride the context the same way traces do, so
// the engine layers (specgraph, query) can enforce them without new
// plumbing through every call signature.

type depthBudgetKey struct{}

// WithDepthBudget attaches a maximum derivation depth to ctx. Algorithm Q's
// breadth-first construction aborts with a DepthBudgetError as soon as a
// wave would exceed it — bounding worst-case work on a hostile or
// runaway query instead of relying on the wall-clock deadline alone.
// max <= 0 means unlimited.
func WithDepthBudget(ctx context.Context, max int) context.Context {
	if max <= 0 {
		return ctx
	}
	return context.WithValue(ctx, depthBudgetKey{}, max)
}

// DepthBudget returns the derivation-depth budget carried by ctx, or 0 when
// unlimited.
func DepthBudget(ctx context.Context) int {
	if ctx == nil {
		// Engines built outside any request run with a nil context.
		return 0
	}
	if v, ok := ctx.Value(depthBudgetKey{}).(int); ok {
		return v
	}
	return 0
}

// DepthBudgetError reports that evaluation needed to derive terms deeper
// than the query's budget allows. It is a client-classifiable condition
// (the query is too deep for this server's policy), not a server fault.
type DepthBudgetError struct {
	// Max is the budget that was exceeded.
	Max int
}

func (e *DepthBudgetError) Error() string {
	return fmt.Sprintf("derivation depth budget of %d exceeded", e.Max)
}

// Is lets errors.Is(err, ErrBudgetExceeded) match the depth budget too, so
// callers can treat every exhausted work budget uniformly.
func (e *DepthBudgetError) Is(target error) bool { return target == ErrBudgetExceeded }

// ErrBudgetExceeded is the sentinel every exhausted work budget matches via
// errors.Is — the admission layer's typed "this query did too much work"
// condition, distinct from rate limiting (which rejects before any work).
var ErrBudgetExceeded = errors.New("work budget exceeded")

// BudgetError reports that one query exhausted one resource of its work
// budget. The BDD/FC line of work treats bounded derivation work as a
// tractability property; a BudgetError is that bound biting at runtime.
type BudgetError struct {
	// Resource names what ran out: "algoq_steps", "derivation_depth" or
	// "arena_bytes".
	Resource string
	// Max is the limit that was exceeded.
	Max int64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("work budget exceeded: %s limit %d", e.Resource, e.Max)
}

// Is lets errors.Is(err, ErrBudgetExceeded) match.
func (e *BudgetError) Is(target error) bool { return target == ErrBudgetExceeded }

// Budget carries one query's work limits plus its running usage. A nil
// *Budget is a no-op: every charge succeeds, so evaluation paths charge
// unconditionally and only budgeted requests pay the atomics. Limits <= 0
// are unlimited. One Budget must serve exactly one query (the usage
// counters are cumulative across charges, including a batch's queries when
// the server chooses to pool them).
type Budget struct {
	// MaxQSteps bounds Algorithm Q exploration steps (terms examined by
	// the Potential/Active breadth-first search).
	MaxQSteps int64
	// MaxDepth bounds the derivation depth any wave may reach.
	MaxDepth int64
	// MaxBytes bounds the metered answer-arena footprint: an estimate of
	// the bytes the query forces the evaluator to materialize
	// (representatives, successor edges, answer tuples).
	MaxBytes int64

	qsteps atomic.Int64
	bytes  atomic.Int64
}

type budgetKey struct{}

// WithBudget attaches a per-query work budget to ctx. A nil budget (or one
// with no finite limit) leaves ctx unchanged.
func WithBudget(ctx context.Context, b *Budget) context.Context {
	if b == nil || (b.MaxQSteps <= 0 && b.MaxDepth <= 0 && b.MaxBytes <= 0) {
		return ctx
	}
	return context.WithValue(ctx, budgetKey{}, b)
}

// BudgetFrom returns the work budget carried by ctx, or nil.
func BudgetFrom(ctx context.Context) *Budget {
	if ctx == nil {
		return nil
	}
	b, _ := ctx.Value(budgetKey{}).(*Budget)
	return b
}

// AddQSteps charges n Algorithm Q steps, failing once the total passes the
// limit.
func (b *Budget) AddQSteps(n int64) error {
	if b == nil || b.MaxQSteps <= 0 {
		return nil
	}
	if b.qsteps.Add(n) > b.MaxQSteps {
		return &BudgetError{Resource: "algoq_steps", Max: b.MaxQSteps}
	}
	return nil
}

// CheckDepth fails when a derivation wave at depth d would exceed the
// budget. Depth is a high-water mark, not a cumulative charge.
func (b *Budget) CheckDepth(d int64) error {
	if b == nil || b.MaxDepth <= 0 || d <= b.MaxDepth {
		return nil
	}
	return &BudgetError{Resource: "derivation_depth", Max: b.MaxDepth}
}

// AddBytes charges n metered arena bytes, failing once the total passes
// the limit.
func (b *Budget) AddBytes(n int64) error {
	if b == nil || b.MaxBytes <= 0 {
		return nil
	}
	if b.bytes.Add(n) > b.MaxBytes {
		return &BudgetError{Resource: "arena_bytes", Max: b.MaxBytes}
	}
	return nil
}

// Used reports the resources charged so far (qsteps, bytes).
func (b *Budget) Used() (qsteps, bytes int64) {
	if b == nil {
		return 0, 0
	}
	return b.qsteps.Load(), b.bytes.Load()
}
