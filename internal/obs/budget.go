package obs

import (
	"context"
	"fmt"
)

// Per-query evaluation budgets ride the context the same way traces do, so
// the engine layers (specgraph, query) can enforce them without new
// plumbing through every call signature.

type depthBudgetKey struct{}

// WithDepthBudget attaches a maximum derivation depth to ctx. Algorithm Q's
// breadth-first construction aborts with a DepthBudgetError as soon as a
// wave would exceed it — bounding worst-case work on a hostile or
// runaway query instead of relying on the wall-clock deadline alone.
// max <= 0 means unlimited.
func WithDepthBudget(ctx context.Context, max int) context.Context {
	if max <= 0 {
		return ctx
	}
	return context.WithValue(ctx, depthBudgetKey{}, max)
}

// DepthBudget returns the derivation-depth budget carried by ctx, or 0 when
// unlimited.
func DepthBudget(ctx context.Context) int {
	if ctx == nil {
		// Engines built outside any request run with a nil context.
		return 0
	}
	if v, ok := ctx.Value(depthBudgetKey{}).(int); ok {
		return v
	}
	return 0
}

// DepthBudgetError reports that evaluation needed to derive terms deeper
// than the query's budget allows. It is a client-classifiable condition
// (the query is too deep for this server's policy), not a server fault.
type DepthBudgetError struct {
	// Max is the budget that was exceeded.
	Max int
}

func (e *DepthBudgetError) Error() string {
	return fmt.Sprintf("derivation depth budget of %d exceeded", e.Max)
}
