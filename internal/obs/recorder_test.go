package obs

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tid, pid := NewTraceID(), NewSpanID()
	v := FormatTraceparent(tid, pid)
	gotT, gotP, ok := ParseTraceparent(v)
	if !ok || gotT != tid || gotP != pid {
		t.Fatalf("round trip %q: got (%q, %q, %v)", v, gotT, gotP, ok)
	}
	bad := []string{
		"",
		"00-" + tid + "-" + pid,            // missing flags
		"00-" + tid + "-" + pid + "-0",     // short flags
		"0-" + tid + "-" + pid + "-01",     // short version
		"ff-" + tid + "-" + pid + "-01",    // forbidden version
		"00-" + tid[:31] + "-" + pid + "-01",
		"00-" + strings.Repeat("0", 32) + "-" + pid + "-01", // all-zero trace
		"00-" + tid + "-" + strings.Repeat("0", 16) + "-01", // all-zero parent
		"00-" + strings.ToUpper(tid) + "-" + pid + "-01",    // uppercase hex
	}
	for _, v := range bad {
		if _, _, ok := ParseTraceparent(v); ok {
			t.Errorf("ParseTraceparent(%q) accepted", v)
		}
	}
	// Unknown (but not 0xff) versions with the right shape are accepted.
	if _, _, ok := ParseTraceparent("01-" + tid + "-" + pid + "-01"); !ok {
		t.Error("version 01 rejected")
	}
}

func TestNewTraceWithAdoption(t *testing.T) {
	id := NewTraceID()
	if got := NewTraceWith(id).ID(); got != id {
		t.Fatalf("valid ID not adopted: %q != %q", got, id)
	}
	if got := NewTraceWith("nonsense").ID(); !ValidTraceID(got) || got == "nonsense" {
		t.Fatalf("invalid ID should mint fresh, got %q", got)
	}
}

func TestInjectTraceparent(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(t.Context(), tr)
	h := http.Header{}
	InjectTraceparent(ctx, h)
	// At the root there is no enclosing span; the placeholder parent is used.
	if got := h.Get(TraceparentHeader); got != FormatTraceparent(tr.ID(), "000000000000cafe") {
		t.Fatalf("root inject: %q", got)
	}
	sctx, sp := StartSpan(ctx, "forward")
	defer sp.End()
	InjectTraceparent(sctx, h)
	_, pid, ok := ParseTraceparent(h.Get(TraceparentHeader))
	if !ok || pid != fmt.Sprintf("%016x", CurrentSpanID(sctx)) {
		t.Fatalf("span inject: %q (want parent %d)", h.Get(TraceparentHeader), CurrentSpanID(sctx))
	}
	// No trace in ctx: no header.
	h2 := http.Header{}
	InjectTraceparent(t.Context(), h2)
	if h2.Get(TraceparentHeader) != "" {
		t.Fatal("inject without trace set a header")
	}
}

func TestGraftReport(t *testing.T) {
	parent := &Report{Spans: []Span{
		{ID: 1, Name: "route", StartUS: 0, DurUS: 100},
		{ID: 2, Parent: 1, Name: "forward", StartUS: 10, DurUS: 80},
	}, Counters: map[string]int64{"router_failovers": 1}}
	child := &Report{Spans: []Span{
		{ID: 1, Name: "handle", StartUS: 0, DurUS: 60},
		{ID: 2, Parent: 1, Name: "parse", StartUS: 5, DurUS: 10},
	}, Counters: map[string]int64{"algoq_steps": 7}, DroppedSpans: 3}
	GraftReport(parent, 2, child)
	if len(parent.Spans) != 4 {
		t.Fatalf("spans = %d", len(parent.Spans))
	}
	// Child IDs renumbered past the parent's max (2); roots re-parented onto
	// the graft span; clocks shifted by the graft span's start.
	got := parent.Spans[2]
	if got.ID != 3 || got.Parent != 2 || got.StartUS != 10 || got.Name != "handle" {
		t.Fatalf("grafted root = %+v", got)
	}
	got = parent.Spans[3]
	if got.ID != 4 || got.Parent != 3 || got.StartUS != 15 || got.Name != "parse" {
		t.Fatalf("grafted leaf = %+v", got)
	}
	if parent.Counters["algoq_steps"] != 7 || parent.Counters["router_failovers"] != 1 {
		t.Fatalf("counters = %v", parent.Counters)
	}
	if parent.DroppedSpans != 3 {
		t.Fatalf("dropped = %d", parent.DroppedSpans)
	}
}

func TestOutcomeForStatus(t *testing.T) {
	cases := []struct {
		status  int
		code    string
		outcome string
	}{
		{200, "", OutcomeOK},
		{0, "", OutcomeOK},
		{400, "bad_request", OutcomeError},
		{422, "budget_exceeded", OutcomeBudgetKill},
		{422, "depth_budget_exceeded", OutcomeBudgetKill},
		{429, "rate_limited", OutcomeShed},
		{503, "overloaded", OutcomeShed},
		{429, "", OutcomeShed},
		{503, "", OutcomeShed},
		{500, "internal", OutcomeError},
	}
	for _, c := range cases {
		if got := OutcomeForStatus(c.status, c.code); got != c.outcome {
			t.Errorf("OutcomeForStatus(%d, %q) = %q, want %q", c.status, c.code, got, c.outcome)
		}
	}
}

func TestRecorderRetention(t *testing.T) {
	rec := NewRecorder(16, 100*time.Millisecond, 4)

	entry := func(id, outcome string, durUS int64, keep bool) TraceEntry {
		return TraceEntry{ID: id, TimeUnixMS: time.Now().UnixMilli(),
			DurUS: durUS, Endpoint: "ask", Outcome: outcome, Keep: keep}
	}
	tr := NewTrace()
	_, sp := StartSpan(WithTrace(t.Context(), tr), "parse")
	sp.End()

	rec.Offer(entry("err1", OutcomeError, 10, false), tr)
	rec.Offer(entry("kill1", OutcomeBudgetKill, 10, false), tr)
	rec.Offer(entry("slow1", OutcomeOK, 200_000, false), tr) // past slow threshold
	rec.Offer(entry("keep1", OutcomeOK, 10, true), tr)       // client asked for a trace
	for i := 0; i < 8; i++ {
		rec.Offer(entry(fmt.Sprintf("ok%d", i), OutcomeOK, 10, false), tr)
	}

	byID := map[string]*TraceEntry{}
	for _, e := range rec.List(100) {
		byID[e.ID] = e
		if e.Report != nil {
			t.Errorf("List entry %s carries a report", e.ID)
		}
	}
	for _, id := range []string{"err1", "kill1", "slow1", "keep1"} {
		if byID[id] == nil {
			t.Fatalf("%s not retained (got %v)", id, byID)
		}
	}
	if byID["slow1"].Outcome != OutcomeSlow {
		t.Fatalf("slow entry outcome = %q", byID["slow1"].Outcome)
	}
	// 1-in-4 sampling kept some but not all of the 8 unremarkable entries.
	sampled := 0
	for i := 0; i < 8; i++ {
		if byID[fmt.Sprintf("ok%d", i)] != nil {
			sampled++
		}
	}
	if sampled == 0 || sampled == 8 {
		t.Fatalf("sampled %d of 8 ok entries, want strictly between", sampled)
	}

	got := rec.Get("err1")
	if got == nil || got.Report == nil || len(got.Report.Spans) == 0 {
		t.Fatalf("Get(err1) = %+v", got)
	}
	if rec.Get("never-offered") != nil {
		t.Fatal("Get of unknown ID returned an entry")
	}

	// A nil recorder is a no-op everywhere.
	var nilRec *Recorder
	nilRec.Offer(entry("x", OutcomeError, 1, false), nil)
	if nilRec.List(10) != nil || nilRec.Get("x") != nil {
		t.Fatal("nil recorder retained something")
	}
}

// TestRecorderConcurrent drives concurrent writers against concurrent
// /debug/traces-style scrapes; run under -race this checks the lock-free
// ring's publication safety.
func TestRecorderConcurrent(t *testing.T) {
	rec := NewRecorder(32, time.Second, 2)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr := NewTrace()
				_, sp := StartSpan(WithTrace(t.Context(), tr), "work")
				sp.End()
				outcome := OutcomeOK
				if i%3 == 0 {
					outcome = OutcomeError
				}
				rec.Offer(TraceEntry{ID: tr.ID(), TimeUnixMS: int64(i),
					Endpoint: "ask", Outcome: outcome}, tr)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for scraping := true; scraping; {
		select {
		case <-done:
			scraping = false
		default:
		}
		for _, e := range rec.List(50) {
			if e.ID == "" {
				t.Error("torn entry: empty ID")
			}
			rec.Get(e.ID)
		}
	}
	if rec.offered.Load() != 2000 || rec.retained.Load() == 0 {
		t.Fatalf("offered %d retained %d", rec.offered.Load(), rec.retained.Load())
	}
}
