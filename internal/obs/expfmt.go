package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// CheckExposition parses a Prometheus text exposition and verifies its
// structure: every sample belongs to the family announced by the preceding
// # TYPE line, no family name appears twice, every sample value is a valid
// float, and histogram families carry _bucket/_sum/_count suffixes. It
// exists so tests (here and in the server) can assert /metrics stays
// machine-parseable without depending on a Prometheus client library.
func CheckExposition(text string) error {
	seenType := make(map[string]string)
	current := "" // family announced by the last # TYPE line
	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			fields := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(fields) == 0 || fields[0] == "" {
				return fmt.Errorf("line %d: malformed HELP line", lineNo)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				return fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
			}
			name, typ := fields[0], fields[1]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
			}
			if _, dup := seenType[name]; dup {
				return fmt.Errorf("line %d: duplicate family %q", lineNo, name)
			}
			seenType[name] = typ
			current = name
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comment
		}
		// Sample line: name[{labels}] value
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.LastIndexByte(line, '}')
			if j < i {
				return fmt.Errorf("line %d: unterminated label set", lineNo)
			}
			line = line[:i] + line[j+1:]
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return fmt.Errorf("line %d: want 'name value', got %q", lineNo, line)
		}
		name := fields[0]
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			return fmt.Errorf("line %d: bad sample value %q", lineNo, fields[1])
		}
		base := name
		if typ := seenType[current]; typ == "histogram" || typ == "summary" {
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if strings.HasSuffix(name, suf) && strings.TrimSuffix(name, suf) == current {
					base = current
					break
				}
			}
		}
		if base != current {
			return fmt.Errorf("line %d: sample %q not announced by preceding TYPE line (current family %q)", lineNo, name, current)
		}
	}
	if len(seenType) == 0 {
		return fmt.Errorf("no metric families found")
	}
	return nil
}
