package obs

import "sync/atomic"

// EngineStats is the process-wide cumulative engine counter set: how much
// work the fixpoint engine, Algorithm Q, and the congruence solver have done
// since the process started. All methods are nil-safe so a nil sink is a
// true no-op — that is the baseline `make bench-obs` compares against.
type EngineStats struct {
	termsInterned  atomic.Int64
	factsDerived   atomic.Int64
	fixpointRounds atomic.Int64
	ruleFirings    atomic.Int64
	equations      atomic.Int64
	qRounds        atomic.Int64
	maxDepth       atomic.Int64
	planHits       atomic.Int64
	planMisses     atomic.Int64
	arenaReuses    atomic.Int64
}

// AddTerms records newly interned terms.
func (s *EngineStats) AddTerms(n int64) {
	if s == nil || n == 0 {
		return
	}
	s.termsInterned.Add(n)
}

// AddFacts records newly derived facts.
func (s *EngineStats) AddFacts(n int64) {
	if s == nil || n == 0 {
		return
	}
	s.factsDerived.Add(n)
}

// AddRounds records completed fixpoint iterations.
func (s *EngineStats) AddRounds(n int64) {
	if s == nil || n == 0 {
		return
	}
	s.fixpointRounds.Add(n)
}

// AddFirings records rule firings.
func (s *EngineStats) AddFirings(n int64) {
	if s == nil || n == 0 {
		return
	}
	s.ruleFirings.Add(n)
}

// AddEquations records equations asserted into a congruence closure Cl(R).
func (s *EngineStats) AddEquations(n int64) {
	if s == nil || n == 0 {
		return
	}
	s.equations.Add(n)
}

// AddQRounds records Algorithm Q exploration steps (terms examined by the
// Potential/Active breadth-first search).
func (s *EngineStats) AddQRounds(n int64) {
	if s == nil || n == 0 {
		return
	}
	s.qRounds.Add(n)
}

// AddPlanHits records queries served by an already-compiled plan.
func (s *EngineStats) AddPlanHits(n int64) {
	if s == nil || n == 0 {
		return
	}
	s.planHits.Add(n)
}

// AddPlanMisses records plan-cache misses (queries that had to compile).
func (s *EngineStats) AddPlanMisses(n int64) {
	if s == nil || n == 0 {
		return
	}
	s.planMisses.Add(n)
}

// AddArenaReuses records query evaluations that reused a pooled scratch
// arena instead of allocating fresh overlays.
func (s *EngineStats) AddArenaReuses(n int64) {
	if s == nil || n == 0 {
		return
	}
	s.arenaReuses.Add(n)
}

// ObserveDepth raises the high-water derivation depth.
func (s *EngineStats) ObserveDepth(d int64) {
	if s == nil {
		return
	}
	for {
		old := s.maxDepth.Load()
		if d <= old || s.maxDepth.CompareAndSwap(old, d) {
			return
		}
	}
}

// Counters returns the cumulative counters (everything monotonically
// increasing) keyed by metric suffix.
func (s *EngineStats) Counters() map[string]int64 {
	if s == nil {
		return nil
	}
	return map[string]int64{
		"terms_interned_total":    s.termsInterned.Load(),
		"facts_derived_total":     s.factsDerived.Load(),
		"fixpoint_rounds_total":   s.fixpointRounds.Load(),
		"rule_firings_total":      s.ruleFirings.Load(),
		"equations_total":         s.equations.Load(),
		"algoq_steps_total":       s.qRounds.Load(),
		"plan_cache_hits_total":   s.planHits.Load(),
		"plan_cache_misses_total": s.planMisses.Load(),
		"arena_reuses_total":      s.arenaReuses.Load(),
	}
}

// MaxDepth returns the high-water derivation depth seen by any query.
func (s *EngineStats) MaxDepth() int64 {
	if s == nil {
		return 0
	}
	return s.maxDepth.Load()
}

// engineSink is the process-global sink. It starts out live; benchmarks
// swap in nil to measure the no-op floor.
var engineSink atomic.Pointer[EngineStats]

func init() {
	engineSink.Store(&EngineStats{})
}

// EngineSink returns the current global sink. May return nil (the no-op
// sink); every EngineStats method tolerates a nil receiver.
func EngineSink() *EngineStats {
	return engineSink.Load()
}

// SetEngineSink replaces the global sink and returns the previous one.
// Pass nil to disable cumulative engine counters entirely.
func SetEngineSink(s *EngineStats) *EngineStats {
	return engineSink.Swap(s)
}
