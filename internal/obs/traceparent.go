package obs

import (
	"context"
	"net/http"
	"strconv"
)

// Cross-process trace propagation. The wire format is the W3C Trace Context
// traceparent header, version 00:
//
//	traceparent: 00-<32 hex trace-id>-<16 hex parent-id>-01
//
// A process that receives the header adopts the trace ID (NewTraceWith) and
// remembers the remote parent span; a process that calls another injects the
// header naming its current span (InjectTraceparent). After the downstream
// process returns its span tree, GraftReport splices it under the calling
// span so the caller renders one merged tree for the whole request.

// TraceparentHeader is the canonical header name (HTTP canonicalizes case).
const TraceparentHeader = "traceparent"

// FormatTraceparent renders a version-00 traceparent value with the sampled
// flag set.
func FormatTraceparent(traceID, parentID string) string {
	return "00-" + traceID + "-" + parentID + "-01"
}

// ParseTraceparent splits a traceparent value into its trace and parent IDs.
// Unknown versions with the same shape are accepted (per spec); malformed
// values return ok=false.
func ParseTraceparent(v string) (traceID, parentID string, ok bool) {
	// "VV-" + 32 + "-" + 16 + "-FF" = 55 bytes minimum.
	if len(v) < 55 || v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return "", "", false
	}
	traceID, parentID = v[3:35], v[36:52]
	if !isHex(v[0:2]) || !ValidTraceID(traceID) || !validSpanID(parentID) {
		return "", "", false
	}
	if v[0] == 'f' && v[1] == 'f' { // version 0xff is forbidden
		return "", "", false
	}
	return traceID, parentID, true
}

// ValidTraceID reports whether s is a well-formed, non-zero 32-hex trace ID.
func ValidTraceID(s string) bool {
	return len(s) == 32 && isHex(s) && !allZero(s)
}

func validSpanID(s string) bool {
	return len(s) == 16 && isHex(s) && !allZero(s)
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// NewTraceWith starts a trace adopting an existing trace ID, so spans
// recorded here join a tree begun in another process. An invalid ID (or "")
// gets a fresh one.
func NewTraceWith(id string) *Trace {
	t := NewTrace()
	if ValidTraceID(id) {
		t.id = id
	}
	return t
}

// SetRemoteParent records the span ID of the remote caller, carried in the
// trace's report so merged trees can note where they were grafted from.
func (t *Trace) SetRemoteParent(parentID string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.remoteParent = parentID
	t.mu.Unlock()
}

// Counter returns the current value of a named trace counter (0 if unset).
func (t *Trace) Counter(name string) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counters[name]
}

// CurrentSpanID returns the ID of the span enclosing ctx, or 0 when ctx is
// at the trace root (or carries no trace).
func CurrentSpanID(ctx context.Context) int {
	if ctx == nil {
		return 0
	}
	tc, _ := ctx.Value(traceCtxKey{}).(traceCtx)
	return tc.spanID
}

// InjectTraceparent sets the traceparent header for ctx's trace, naming the
// current span as the remote parent. No-op when ctx carries no trace.
func InjectTraceparent(ctx context.Context, h http.Header) {
	t := FromContext(ctx)
	if t == nil {
		return
	}
	// Local span IDs are small ints; render as a 16-hex parent ID. Span 0
	// (the root) maps to the reserved-looking but valid "000000000000cafe"
	// so the header never carries the forbidden all-zero parent.
	sid := CurrentSpanID(ctx)
	var pid string
	if sid <= 0 {
		pid = "000000000000cafe"
	} else {
		s := strconv.FormatUint(uint64(sid), 16)
		pid = "0000000000000000"[:16-len(s)] + s
	}
	h.Set(TraceparentHeader, FormatTraceparent(t.ID(), pid))
}

// GraftReport splices child — the span tree a downstream process returned —
// into parent under span underID: child span IDs are renumbered past the
// parent's, child roots are re-parented onto the graft span, child clocks are
// shifted by the graft span's start so the merged tree reads on one timeline,
// and counters merge by sum. Counters present in both reports double-count by
// design: the parent's copy already aggregated the child's work if the parent
// recorded it, which no funcdb process does — each process only counts local
// engine work.
func GraftReport(parent *Report, underID int, child *Report) {
	if parent == nil || child == nil {
		return
	}
	maxID := 0
	var base int64
	for _, s := range parent.Spans {
		if s.ID > maxID {
			maxID = s.ID
		}
		if s.ID == underID {
			base = s.StartUS
		}
	}
	for _, s := range child.Spans {
		s.ID += maxID
		if s.Parent == 0 {
			s.Parent = underID
		} else {
			s.Parent += maxID
		}
		s.StartUS += base
		parent.Spans = append(parent.Spans, s)
	}
	if len(child.Counters) > 0 {
		if parent.Counters == nil {
			parent.Counters = make(map[string]int64, len(child.Counters))
		}
		for k, v := range child.Counters {
			parent.Counters[k] += v
		}
	}
	parent.DroppedSpans += child.DroppedSpans
}
