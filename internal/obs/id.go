package obs

import (
	"crypto/rand"
	"encoding/binary"
	"sync/atomic"
	"time"
)

// ID generation. With the flight recorder on, every request mints a trace ID
// and a request ID, so the crypto/rand read the package used to pay per trace
// (a syscall on most platforms) is measurable at hot-path rates. Instead a
// 128-bit process epoch is drawn from crypto/rand once at startup and each ID
// is splitmix64 of (epoch word XOR a process-wide counter): unique within the
// process by the counter, unguessable across processes by the epoch, and
// costing one atomic add and no syscalls per ID.

var (
	idEpoch   [2]uint64
	idCounter atomic.Uint64
)

func init() {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// No entropy source: fall back to the clock. IDs stay unique within
		// the process; cross-process collisions become merely unlikely.
		now := uint64(time.Now().UnixNano())
		binary.LittleEndian.PutUint64(b[0:8], splitmix64(now))
		binary.LittleEndian.PutUint64(b[8:16], splitmix64(now^0x9e3779b97f4a7c15))
	}
	idEpoch[0] = binary.LittleEndian.Uint64(b[0:8])
	idEpoch[1] = binary.LittleEndian.Uint64(b[8:16])
}

// splitmix64 is the finalizer of the SplitMix64 generator: a fast, well
// distributed bijection on 64-bit values.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

const hexDigits = "0123456789abcdef"

func appendHex64(dst []byte, v uint64) []byte {
	for shift := 60; shift >= 0; shift -= 4 {
		dst = append(dst, hexDigits[(v>>uint(shift))&0xf])
	}
	return dst
}

// NewTraceID returns a 32-hex-digit W3C-compatible trace ID.
func NewTraceID() string {
	n := idCounter.Add(1)
	hi := splitmix64(idEpoch[0] ^ n)
	lo := splitmix64(idEpoch[1] ^ (n << 1) ^ 0xa5a5a5a5a5a5a5a5)
	if hi == 0 && lo == 0 {
		lo = 1 // the all-zero trace ID is invalid per W3C
	}
	buf := make([]byte, 0, 32)
	buf = appendHex64(buf, hi)
	buf = appendHex64(buf, lo)
	return string(buf)
}

// NewSpanID returns a 16-hex-digit W3C-compatible parent/span ID.
func NewSpanID() string {
	v := splitmix64(idEpoch[1] ^ idCounter.Add(1))
	if v == 0 {
		v = 1
	}
	return string(appendHex64(make([]byte, 0, 16), v))
}

// NewRequestID returns a short (16-hex-digit) per-request identifier for
// logs and the X-Request-Id header.
func NewRequestID() string {
	return NewSpanID()
}
