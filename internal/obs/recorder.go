package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// Flight recorder: a per-process ring buffer holding the span trees of
// recent requests so a p99 spike or a budget kill can be examined after the
// fact, without anyone having asked for a trace up front. Retention is
// tail-based: entries that matter (errors, budget kills, sheds, anything
// over the slow threshold, and explicitly traced requests) always land in
// the kept ring; the unremarkable majority is sampled one-in-N into a
// second ring so the recorder still shows what normal looks like.
//
// The write path is lock-free — classify, one atomic add to pick a slot,
// one atomic pointer store — so recording every request costs nanoseconds
// even under the hot-path gate. Readers (the /debug/traces endpoints)
// snapshot slots with atomic loads and may observe a torn *ordering* across
// slots but never a torn entry.

// Request outcomes as classified for retention. OutcomeOK entries are
// sampled; everything else is always kept.
const (
	OutcomeOK         = "ok"
	OutcomeError      = "error"
	OutcomeBudgetKill = "budget_kill"
	OutcomeShed       = "shed"
	OutcomeSlow       = "slow"
)

// OutcomeForStatus maps an HTTP status and funcdb error code to a retention
// class. Budget kills (422 budget codes) and sheds (429, overloaded 503s)
// are distinguished from plain errors because they are the signals the
// admission layer acts on.
func OutcomeForStatus(status int, code string) string {
	switch code {
	case "budget_exceeded", "depth_budget_exceeded":
		return OutcomeBudgetKill
	case "rate_limited", "overloaded", "too_many_streams":
		return OutcomeShed
	}
	switch {
	case status == 0 || status < 400:
		return OutcomeOK
	case status == 429 || status == 503:
		return OutcomeShed
	default:
		return OutcomeError
	}
}

// TraceEntry is one recorded request. Report is populated only for retained
// entries (building it costs a copy of the span slice, skipped for drops).
type TraceEntry struct {
	ID          string  `json:"id"`
	TimeUnixMS  int64   `json:"time_unix_ms"`
	DurUS       int64   `json:"dur_us"`
	Endpoint    string  `json:"endpoint"`
	DB          string  `json:"db,omitempty"`
	Tenant      string  `json:"tenant,omitempty"`
	Fingerprint string  `json:"fingerprint,omitempty"`
	Query       string  `json:"query,omitempty"`
	Status      int     `json:"status"`
	Code        string  `json:"code,omitempty"`
	Outcome     string  `json:"outcome"`
	Node        string  `json:"node,omitempty"` // set by the router when merging shard entries
	Report      *Report `json:"report,omitempty"`

	// Keep forces retention regardless of outcome — set for requests whose
	// client explicitly asked for a trace.
	Keep bool `json:"-"`
}

// ring is a fixed-size lock-free overwrite buffer of entries.
type ring struct {
	slots []atomic.Pointer[TraceEntry]
	next  atomic.Uint64
}

func newRing(n int) *ring {
	return &ring{slots: make([]atomic.Pointer[TraceEntry], n)}
}

func (r *ring) put(e *TraceEntry) {
	i := r.next.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(e)
}

func (r *ring) snapshot(dst []*TraceEntry) []*TraceEntry {
	for i := range r.slots {
		if e := r.slots[i].Load(); e != nil {
			dst = append(dst, e)
		}
	}
	return dst
}

// Recorder defaults.
const (
	DefaultTraceBuffer = 1024                   // total ring capacity (kept + sampled)
	DefaultTraceSample = 64                     // keep 1 in N unremarkable requests
	DefaultSlowTrace   = 250 * time.Millisecond // slow threshold when none is configured
)

// Recorder is the per-process flight recorder. The zero value is not usable;
// construct with NewRecorder. A nil *Recorder is valid and all methods are
// no-ops, so call sites never branch on whether recording is enabled.
type Recorder struct {
	kept    *ring // errors, kills, sheds, slow, explicitly traced
	sampled *ring // 1-in-N of everything else
	slowUS  int64
	sample  uint64
	ctr     atomic.Uint64

	offered   atomic.Int64
	retained  atomic.Int64
	sampledCt atomic.Int64
}

// NewRecorder builds a flight recorder. capacity is the total entry budget
// (split 3:1 between the kept and sampled rings); slow is the duration past
// which an otherwise-ok request is retained; sampleEvery keeps one in N
// unremarkable requests. Zero or negative arguments take the defaults.
func NewRecorder(capacity int, slow time.Duration, sampleEvery int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultTraceBuffer
	}
	if capacity < 8 {
		capacity = 8
	}
	if slow <= 0 {
		slow = DefaultSlowTrace
	}
	if sampleEvery <= 0 {
		sampleEvery = DefaultTraceSample
	}
	keepN := capacity * 3 / 4
	sampN := capacity - keepN
	return &Recorder{
		kept:    newRing(keepN),
		sampled: newRing(sampN),
		slowUS:  slow.Microseconds(),
		sample:  uint64(sampleEvery),
	}
}

// Offer records one finished request. e.Outcome should already be set via
// OutcomeForStatus; Offer upgrades ok entries past the slow threshold to
// OutcomeSlow. The trace's report is built only when the entry is retained.
// Safe on a nil receiver.
func (rec *Recorder) Offer(e TraceEntry, tr *Trace) {
	if rec == nil {
		return
	}
	rec.offered.Add(1)
	keep := e.Keep || (e.Outcome != "" && e.Outcome != OutcomeOK)
	if !keep && e.DurUS >= rec.slowUS {
		e.Outcome = OutcomeSlow
		keep = true
	}
	if e.Outcome == "" {
		e.Outcome = OutcomeOK
	}
	if keep {
		if e.Report == nil && tr != nil {
			e.Report = tr.Report()
		}
		rec.retained.Add(1)
		rec.kept.put(&e)
		return
	}
	if rec.ctr.Add(1)%rec.sample == 0 {
		if e.Report == nil && tr != nil {
			e.Report = tr.Report()
		}
		rec.sampledCt.Add(1)
		rec.sampled.put(&e)
	}
}

// List returns up to limit recent entries from both rings, newest first,
// with reports stripped (fetch the full entry by ID via Get). Safe on a nil
// receiver.
func (rec *Recorder) List(limit int) []*TraceEntry {
	if rec == nil {
		return nil
	}
	if limit <= 0 {
		limit = 100
	}
	all := rec.kept.snapshot(nil)
	all = rec.sampled.snapshot(all)
	sort.Slice(all, func(i, j int) bool { return all[i].TimeUnixMS > all[j].TimeUnixMS })
	if len(all) > limit {
		all = all[:limit]
	}
	out := make([]*TraceEntry, len(all))
	for i, e := range all {
		c := *e
		c.Report = nil
		out[i] = &c
	}
	return out
}

// Get returns the full entry (with report) for a trace ID, or nil. When one
// trace passed through a process more than once the most recent entry wins.
// Safe on a nil receiver.
func (rec *Recorder) Get(id string) *TraceEntry {
	if rec == nil || id == "" {
		return nil
	}
	var best *TraceEntry
	for _, e := range append(rec.kept.snapshot(nil), rec.sampled.snapshot(nil)...) {
		if e.ID == id && (best == nil || e.TimeUnixMS > best.TimeUnixMS) {
			best = e
		}
	}
	if best == nil {
		return nil
	}
	c := *best
	return &c
}

// Instrument registers the recorder's own meta-metrics on reg under the
// given name prefix (e.g. "funcdbd_").
func (rec *Recorder) Instrument(reg *Registry, prefix string) {
	if rec == nil || reg == nil {
		return
	}
	reg.Source(prefix+"traces_", "counter",
		"Flight recorder activity: requests offered, retained by the tail-based policy, and probabilistically sampled.",
		func() map[string]int64 {
			return map[string]int64{
				"offered_total":  rec.offered.Load(),
				"retained_total": rec.retained.Load(),
				"sampled_total":  rec.sampledCt.Load(),
			}
		})
}
