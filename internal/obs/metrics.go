package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds metric families and renders them in Prometheus text
// exposition format (version 0.0.4). Registration takes a lock; the hot
// paths — Counter.Add, Gauge.Set, Histogram.Observe — are purely atomic.
//
// Families are identified by metric name. Registering the same name twice
// with a different type or help string panics (a programming error);
// registering the same name with a different label set adds a sibling
// series to the existing family.
type Registry struct {
	mu      sync.RWMutex
	fams    map[string]*family
	sources []source
}

// family is one named metric with one or more labeled series.
type family struct {
	name, help, typ string
	buckets         []float64 // histograms only
	series          []*series
}

type series struct {
	labels string // rendered {k="v",...} suffix, "" for unlabeled
	c      *Counter
	g      *Gauge
	gf     func() float64
	h      *Histogram
}

// source is a callback contributing a whole set of families at scrape time,
// used for gauge maps whose keys are not known at registration (store and
// replication gauges, engine counters).
type source struct {
	prefix string
	typ    string
	help   string
	fn     func() map[string]int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are a caller bug but are not checked on the
// hot path.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an integer metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is an explicit-bucket histogram. Observe is lock-free: one
// atomic add into the right bucket, one CAS loop for the float sum, one
// atomic add for the count.
type Histogram struct {
	bounds  []float64      // upper bounds, ascending, excluding +Inf
	counts  []atomic.Int64 // len(bounds)+1, last is the +Inf bucket
	sumBits atomic.Uint64
	count   atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// NewHistogram builds a standalone histogram that is not registered with any
// registry — used by the per-fingerprint stats table, whose series are
// rendered as JSON rather than scraped.
func NewHistogram(bounds []float64) *Histogram {
	h := &Histogram{bounds: bounds}
	h.counts = make([]atomic.Int64, len(bounds)+1)
	return h
}

// Snapshot returns the histogram's bounds and a consistent-enough copy of
// its per-bucket counts, sum and count for quantile estimation. Buckets are
// non-cumulative (counts[i] pairs with bounds[i]; the last is +Inf).
func (h *Histogram) Snapshot() (bounds []float64, counts []int64, sum float64, count int64) {
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return h.bounds, counts, h.Sum(), h.count.Load()
}

// Quantile estimates the q-quantile (0 < q < 1) of the observations by
// linear interpolation within the winning bucket. The +Inf bucket clamps to
// the largest finite bound. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	bounds, counts, _, total := h.Snapshot()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		cum += c
		if float64(cum) >= rank {
			if i >= len(bounds) { // +Inf bucket
				if len(bounds) == 0 {
					return 0
				}
				return bounds[len(bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			frac := 1.0
			if c > 0 {
				frac = (rank - float64(cum-c)) / float64(c)
			}
			return lo + (bounds[i]-lo)*frac
		}
	}
	if len(bounds) == 0 {
		return 0
	}
	return bounds[len(bounds)-1]
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// DurationBuckets is the default latency bucket layout, in seconds, from
// 100µs to 10s.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter registers (or finds) a counter series. kv is an alternating list
// of label keys and values.
func (r *Registry) Counter(name, help string, kv ...string) *Counter {
	s := r.register(name, help, "counter", nil, kv)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge registers (or finds) a settable gauge series.
func (r *Registry) Gauge(name, help string, kv ...string) *Gauge {
	s := r.register(name, help, "gauge", nil, kv)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// GaugeFunc registers a gauge series whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, kv ...string) {
	s := r.register(name, help, "gauge", nil, kv)
	s.gf = fn
}

// Histogram registers (or finds) an explicit-bucket histogram series.
// Bounds must be ascending and must not include +Inf.
func (r *Registry) Histogram(name, help string, bounds []float64, kv ...string) *Histogram {
	s := r.register(name, help, "histogram", bounds, kv)
	if s.h == nil {
		h := &Histogram{bounds: bounds}
		h.counts = make([]atomic.Int64, len(bounds)+1)
		s.h = h
	}
	return s.h
}

// Source registers a scrape-time callback that contributes one family per
// map key, named prefix+key, all with the given type ("gauge" or "counter")
// and help string. Keys that collide with a statically registered family or
// with an earlier source are skipped at render time so the exposition never
// contains duplicate names.
func (r *Registry) Source(prefix, typ, help string, fn func() map[string]int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sources = append(r.sources, source{prefix: prefix, typ: typ, help: help, fn: fn})
}

func (r *Registry) register(name, help, typ string, buckets []float64, kv []string) *series {
	if len(kv)%2 != 0 {
		panic("obs: odd label key/value list for " + name)
	}
	labels := renderLabels(kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, buckets: buckets}
		r.fams[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.typ, typ))
	}
	for _, s := range f.series {
		if s.labels == labels {
			return s
		}
	}
	s := &series{labels: labels}
	f.series = append(f.series, s)
	return s
}

// renderLabels builds the {k="v",...} suffix with keys sorted, so the same
// label set always renders (and deduplicates) identically.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// mergeLabels splices an extra label (le for histogram buckets) into a
// rendered label suffix.
func mergeLabels(labels, k, v string) string {
	extra := k + `="` + escapeLabel(v) + `"`
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// WriteText renders the registry in Prometheus text exposition format:
// families sorted by name, each preceded by its # HELP and # TYPE lines,
// with no duplicate family names.
func (r *Registry) WriteText(w io.Writer) error {
	fams, srcs := r.snapshot()
	seen := make(map[string]bool, len(fams))
	all := make([]*family, 0, len(fams)+16)
	for _, f := range fams {
		seen[f.name] = true
		all = append(all, f)
	}
	// Materialize source callbacks into synthetic single-series families.
	for _, src := range srcs {
		vals := src.fn()
		keys := make([]string, 0, len(vals))
		for k := range vals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			name := src.prefix + k
			if seen[name] {
				continue
			}
			seen[name] = true
			v := vals[k]
			g := &Gauge{}
			g.Set(v)
			sf := &family{name: name, help: src.help, typ: src.typ}
			if src.typ == "counter" {
				c := &Counter{}
				c.Add(v)
				sf.series = []*series{{c: c}}
			} else {
				sf.series = []*series{{g: g}}
			}
			all = append(all, sf)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].name < all[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range all {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			writeSeries(bw, f, s)
		}
	}
	return bw.Flush()
}

func writeSeries(w *bufio.Writer, f *family, s *series) {
	switch {
	case s.c != nil:
		fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.c.Value())
	case s.gf != nil:
		fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatFloat(s.gf()))
	case s.g != nil:
		fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.g.Value())
	case s.h != nil:
		var cum int64
		for i, b := range s.h.bounds {
			cum += s.h.counts[i].Load()
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, mergeLabels(s.labels, "le", formatFloat(b)), cum)
		}
		cum += s.h.counts[len(s.h.bounds)].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, mergeLabels(s.labels, "le", "+Inf"), cum)
		fmt.Fprintf(w, "%s_sum%s %s\n", f.name, s.labels, formatFloat(s.h.Sum()))
		fmt.Fprintf(w, "%s_count%s %d\n", f.name, s.labels, s.h.Count())
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// snapshot copies the family and source lists under the read lock so
// rendering never races with registration.
func (r *Registry) snapshot() ([]*family, []source) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	srcs := make([]source, len(r.sources))
	copy(srcs, r.sources)
	return fams, srcs
}
