package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
)

func TestTraceSpansNestAndReport(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)

	ctx1, root := StartSpan(ctx, "request")
	ctx2, child := StartSpan(ctx1, "parse")
	child.End()
	_, sib := StartSpan(ctx1, "solve")
	sib.End()
	_ = ctx2
	root.End()

	rep := tr.Report()
	if rep.ID != tr.ID() || len(rep.ID) != 32 {
		t.Fatalf("trace id = %q", rep.ID)
	}
	if len(rep.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(rep.Spans))
	}
	byName := map[string]Span{}
	for _, s := range rep.Spans {
		byName[s.Name] = s
	}
	req := byName["request"]
	if req.Parent != 0 {
		t.Errorf("request parent = %d, want 0", req.Parent)
	}
	for _, name := range []string{"parse", "solve"} {
		if byName[name].Parent != req.ID {
			t.Errorf("%s parent = %d, want %d", name, byName[name].Parent, req.ID)
		}
		if byName[name].DurUS < 0 {
			t.Errorf("%s duration = %d, want >= 0", name, byName[name].DurUS)
		}
	}
}

func TestTraceNoopWithoutTrace(t *testing.T) {
	ctx := context.Background()
	ctx2, h := StartSpan(ctx, "anything")
	if h != nil {
		t.Fatal("expected nil handle without a trace")
	}
	if ctx2 != ctx {
		t.Fatal("context should pass through unchanged")
	}
	h.End() // must not panic
	Add(ctx, "n", 1)
	SetMax(ctx, "n", 9)
	if FromContext(ctx) != nil {
		t.Fatal("FromContext on bare context should be nil")
	}
}

func TestTraceCounters(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	Add(ctx, "facts_derived", 3)
	Add(ctx, "facts_derived", 4)
	Add(ctx, "zero", 0) // dropped
	SetMax(ctx, "depth", 5)
	SetMax(ctx, "depth", 2) // lower, ignored
	rep := tr.Report()
	if rep.Counters["facts_derived"] != 7 {
		t.Errorf("facts_derived = %d, want 7", rep.Counters["facts_derived"])
	}
	if rep.Counters["depth"] != 5 {
		t.Errorf("depth = %d, want 5", rep.Counters["depth"])
	}
	if _, ok := rep.Counters["zero"]; ok {
		t.Error("zero-delta counter should not be recorded")
	}
}

func TestTraceSpanCap(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	for i := 0; i < maxSpans+10; i++ {
		_, h := StartSpan(ctx, "s")
		h.End()
	}
	rep := tr.Report()
	if len(rep.Spans) != maxSpans {
		t.Fatalf("got %d spans, want cap %d", len(rep.Spans), maxSpans)
	}
	if rep.DroppedSpans != 10 {
		t.Fatalf("dropped = %d, want 10", rep.DroppedSpans)
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				c, h := StartSpan(ctx, "worker")
				Add(c, "ops", 1)
				h.End()
			}
		}()
	}
	wg.Wait()
	rep := tr.Report()
	if rep.Counters["ops"] != 400 {
		t.Fatalf("ops = %d, want 400", rep.Counters["ops"])
	}
	if len(rep.Spans)+rep.DroppedSpans != 400 {
		t.Fatalf("spans %d + dropped %d != 400", len(rep.Spans), rep.DroppedSpans)
	}
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests handled.", "endpoint", "ask")
	c.Add(3)
	r.Counter("test_requests_total", "Requests handled.", "endpoint", "answers").Inc()
	g := r.Gauge("test_databases", "Loaded databases.")
	g.Set(2)
	r.GaugeFunc("test_uptime_seconds", "Uptime.", func() float64 { return 1.5 })
	h := r.Histogram("test_duration_seconds", "Latency.", []float64{0.01, 0.1}, "endpoint", "ask")
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(7)
	r.Source("test_", "gauge", "Store gauge.", func() map[string]int64 {
		return map[string]int64{"wal_bytes": 123}
	})

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE test_requests_total counter",
		`test_requests_total{endpoint="ask"} 3`,
		`test_requests_total{endpoint="answers"} 1`,
		"# TYPE test_databases gauge",
		"test_databases 2",
		"test_uptime_seconds 1.5",
		"# TYPE test_duration_seconds histogram",
		`test_duration_seconds_bucket{endpoint="ask",le="0.01"} 1`,
		`test_duration_seconds_bucket{endpoint="ask",le="0.1"} 2`,
		`test_duration_seconds_bucket{endpoint="ask",le="+Inf"} 3`,
		`test_duration_seconds_count{endpoint="ask"} 3`,
		"# TYPE test_wal_bytes gauge",
		"test_wal_bytes 123",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

// TestExpositionWellFormed is the golden structural check: every sample is
// preceded by its family's # TYPE line, and no family name appears twice.
func TestExpositionWellFormed(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "A.", "k", "1").Inc()
	r.Counter("a_total", "A.", "k", "2").Inc()
	r.Gauge("b", "B.").Set(1)
	r.Histogram("c_seconds", "C.", DurationBuckets).Observe(0.2)
	r.Source("d_", "gauge", "D.", func() map[string]int64 {
		return map[string]int64{"x": 1, "y": 2}
	})
	// A source key colliding with a static family must be skipped.
	r.Source("", "gauge", "Clash.", func() map[string]int64 {
		return map[string]int64{"b": 99}
	})

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if err := CheckExposition(b.String()); err != nil {
		t.Fatalf("exposition malformed: %v\n%s", err, b.String())
	}
	if strings.Contains(b.String(), "b 99") {
		t.Error("colliding source sample leaked into exposition")
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "X.")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on re-registering x_total as a gauge")
		}
	}()
	r.Gauge("x_total", "X.")
}

func TestSourceInText(t *testing.T) {
	r := NewRegistry()
	r.Counter("j_total", "J.", "endpoint", "ask").Add(4)
	r.Gauge("j_up", "Up.").Set(1)
	r.Source("j_", "gauge", "S.", func() map[string]int64 { return map[string]int64{"wal_bytes": 9} })
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`j_total{endpoint="ask"} 4`, "j_up 1", "j_wal_bytes 9"} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

func TestEngineSink(t *testing.T) {
	old := SetEngineSink(&EngineStats{})
	defer SetEngineSink(old)

	s := EngineSink()
	s.AddFacts(5)
	s.AddRounds(2)
	s.AddEquations(3)
	s.ObserveDepth(4)
	s.ObserveDepth(2)
	c := s.Counters()
	if c["facts_derived_total"] != 5 || c["fixpoint_rounds_total"] != 2 || c["equations_total"] != 3 {
		t.Fatalf("counters = %v", c)
	}
	if s.MaxDepth() != 4 {
		t.Fatalf("max depth = %d, want 4", s.MaxDepth())
	}

	// A nil sink is a no-op, not a crash.
	SetEngineSink(nil)
	ns := EngineSink()
	ns.AddFacts(1)
	ns.ObserveDepth(10)
	if ns.Counters() != nil || ns.MaxDepth() != 0 {
		t.Fatal("nil sink should report nothing")
	}
}
