package replica_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"

	"funcdb/internal/core"
	"funcdb/internal/registry"
	"funcdb/internal/replica"
	"funcdb/internal/server"
	"funcdb/internal/store"
)

// primary is a restartable in-process primary daemon: a store-backed
// registry served over a real listener whose address survives restarts,
// so a replica configured with one URL can watch it die and come back.
type primary struct {
	t    *testing.T
	dir  string
	addr string
	st   *store.Store
	reg  *registry.Registry
	hs   *http.Server
}

func startPrimary(t *testing.T, dir, addr string) *primary {
	t.Helper()
	st, err := store.Open(store.Options{Dir: dir, Fsync: store.FsyncNever, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New(core.Options{})
	if _, err := st.Recover(reg); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: server.New(reg, server.Config{
		Repl:          st,
		ReplHeartbeat: 50 * time.Millisecond,
	}).Handler()}
	go hs.Serve(ln)
	return &primary{t: t, dir: dir, addr: ln.Addr().String(), st: st, reg: reg, hs: hs}
}

func (p *primary) url() string { return "http://" + p.addr }

// stop kills the primary abruptly: open streams are severed, nothing is
// flushed beyond what the store already wrote.
func (p *primary) stop() {
	p.t.Helper()
	p.hs.Close()
	if err := p.st.Close(); err != nil {
		p.t.Logf("primary store close: %v", err)
	}
}

// restart brings the primary back on the same address from its own disk
// state, the way a crashed daemon would come back.
func (p *primary) restart() *primary {
	return startPrimary(p.t, p.dir, p.addr)
}

func startReplica(t *testing.T, dir, primaryURL string, snapshotEvery int) (*replica.Replica, *registry.Registry) {
	t.Helper()
	reg := registry.New(core.Options{})
	rep, err := replica.Start(reg, replica.Options{
		Primary:      primaryURL,
		Store:        store.Options{Dir: dir, Fsync: store.FsyncNever, SnapshotEvery: snapshotEvery},
		ReadyMaxLag:  1 << 20, // readiness lag is exercised separately
		StallTimeout: 2 * time.Second,
		BackoffMin:   10 * time.Millisecond,
		BackoffMax:   200 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep, reg
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// catalogFingerprint renders everything observable about a registry —
// names, kinds, versions, and the full answer set of the probe queries —
// as one JSON string, so primary/replica equality is bit-for-bit.
func catalogFingerprint(t *testing.T, reg *registry.Registry, probes map[string][]string) string {
	t.Helper()
	type dbView struct {
		Name    string           `json:"name"`
		Kind    string           `json:"kind"`
		Version uint64           `json:"version"`
		Asks    map[string]bool  `json:"asks"`
		Answers map[string][]any `json:"answers"`
	}
	var views []dbView
	for _, e := range reg.List() {
		v := dbView{Name: e.Name, Kind: string(e.Kind), Version: e.Version,
			Asks: map[string]bool{}, Answers: map[string][]any{}}
		for _, q := range probes[e.Name] {
			yes, err := e.Ask(context.Background(), q)
			if err != nil {
				t.Fatalf("%s: ask %q: %v", e.Name, q, err)
			}
			v.Asks[q] = yes
			tuples, _, err := e.Answers(context.Background(), q, core.WithDepth(8), core.WithLimit(1000))
			if err != nil {
				t.Fatalf("%s: answers %q: %v", e.Name, q, err)
			}
			for _, tu := range tuples {
				v.Answers[q] = append(v.Answers[q], tu)
			}
		}
		views = append(views, v)
	}
	raw, err := json.Marshal(views)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestReplicaFollowsPrimary is the headline path: bootstrap from a live
// primary that already has history, then follow more than a thousand
// streamed mutations and end bit-for-bit identical, including across a
// replica restart that resumes from its own journal.
func TestReplicaFollowsPrimary(t *testing.T) {
	p := startPrimary(t, t.TempDir(), "127.0.0.1:0")
	defer p.stop()
	if _, err := p.reg.PutProgram("seen", []byte("Seen(c0).")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.reg.PutProgram("even", []byte("Even(0). Even(T) -> Even(T+2).")); err != nil {
		t.Fatal(err)
	}
	// History that predates the replica: bootstrap must cover it.
	for i := 1; i <= 100; i++ {
		if _, err := p.reg.ExtendFacts("seen", []byte(fmt.Sprintf("Seen(c%d).", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.st.Snapshot(); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	rep, rreg := startReplica(t, dir, p.url(), 400)
	waitFor(t, "bootstrap", func() bool { return rep.Applied() == p.st.LastLSN() })
	waitFor(t, "readiness", func() bool { return rep.Ready() == nil })

	// Stream >1000 mutations through the live connection.
	for i := 101; i <= 1150; i++ {
		if _, err := p.reg.ExtendFacts("seen", []byte(fmt.Sprintf("Seen(c%d).", i))); err != nil {
			t.Fatal(err)
		}
	}
	last := p.st.LastLSN()
	waitFor(t, "stream convergence", func() bool { return rep.Applied() == last })

	probes := map[string][]string{
		"seen": {"?- Seen(c1).", "?- Seen(c575).", "?- Seen(c1150).", "?- Seen(c2000).", "?- Seen(X)."},
		"even": {"?- Even(42).", "?- Even(41).", "?- Even(X)."},
	}
	if pf, rf := catalogFingerprint(t, p.reg, probes), catalogFingerprint(t, rreg, probes); pf != rf {
		t.Fatalf("catalogs differ:\nprimary %s\nreplica %s", pf, rf)
	}
	g := rep.Gauges()
	if g["repl_connected"] != 1 || g["repl_lag_records"] != 0 {
		t.Fatalf("gauges after convergence: %v", g)
	}
	if g["repl_bootstrapped"] != 1 {
		t.Fatalf("gauges missing bootstrap: %v", g)
	}

	// Restart the replica: it must resume from its own journal, not
	// re-bootstrap, and still match after more writes.
	if err := rep.Close(); err != nil {
		t.Fatal(err)
	}
	rep2, rreg2 := startReplica(t, dir, p.url(), 400)
	defer rep2.Close()
	for i := 1151; i <= 1200; i++ {
		if _, err := p.reg.ExtendFacts("seen", []byte(fmt.Sprintf("Seen(c%d).", i))); err != nil {
			t.Fatal(err)
		}
	}
	last = p.st.LastLSN()
	waitFor(t, "post-restart convergence", func() bool { return rep2.Applied() == last })
	probes["seen"] = append(probes["seen"], "?- Seen(c1200).")
	if pf, rf := catalogFingerprint(t, p.reg, probes), catalogFingerprint(t, rreg2, probes); pf != rf {
		t.Fatalf("catalogs differ after replica restart:\nprimary %s\nreplica %s", pf, rf)
	}
	if rep2.Gauges()["repl_rebootstraps_total"] != 0 {
		t.Fatal("replica re-bootstrapped on restart instead of resuming")
	}
}

// TestReplicaSurvivesPrimaryRestart severs the stream by killing the
// primary mid-replication and brings it back on the same address; the
// replica must reconnect, resume from its position, and converge.
func TestReplicaSurvivesPrimaryRestart(t *testing.T) {
	p := startPrimary(t, t.TempDir(), "127.0.0.1:0")
	if _, err := p.reg.PutProgram("seen", []byte("Seen(c0).")); err != nil {
		t.Fatal(err)
	}
	rep, rreg := startReplica(t, t.TempDir(), p.url(), 0)
	defer rep.Close()
	waitFor(t, "initial sync", func() bool { return rep.Applied() == p.st.LastLSN() })
	waitFor(t, "stream connected", func() bool { return rep.Gauges()["repl_connected"] == 1 })

	p.stop()
	p = p.restart()
	defer p.stop()
	for i := 1; i <= 20; i++ {
		if _, err := p.reg.ExtendFacts("seen", []byte(fmt.Sprintf("Seen(c%d).", i))); err != nil {
			t.Fatal(err)
		}
	}
	last := p.st.LastLSN()
	waitFor(t, "reconnect and converge", func() bool { return rep.Applied() == last })
	probes := map[string][]string{"seen": {"?- Seen(c20).", "?- Seen(X)."}}
	if pf, rf := catalogFingerprint(t, p.reg, probes), catalogFingerprint(t, rreg, probes); pf != rf {
		t.Fatalf("catalogs differ after primary restart:\nprimary %s\nreplica %s", pf, rf)
	}
	if rep.Gauges()["repl_reconnects_total"] == 0 {
		t.Fatal("expected at least one reconnect")
	}
}

// TestReplicaRebootstrapsAfterCompaction takes a replica offline while
// the primary deletes a database and compacts its journal past the
// replica's position; on return the replica must accept 410, re-seed
// from the newer snapshot, and drop the deleted database locally.
func TestReplicaRebootstrapsAfterCompaction(t *testing.T) {
	p := startPrimary(t, t.TempDir(), "127.0.0.1:0")
	defer p.stop()
	if _, err := p.reg.PutProgram("seen", []byte("Seen(c0).")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.reg.PutProgram("gone", []byte("Gone(x).")); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	rep, rreg := startReplica(t, dir, p.url(), 0)
	waitFor(t, "initial sync", func() bool { return rep.Applied() == p.st.LastLSN() })
	if _, ok := rreg.Get("gone"); !ok {
		t.Fatal("replica missing database before going offline")
	}
	if err := rep.Close(); err != nil {
		t.Fatal(err)
	}

	// While the replica is away: delete a database, add history, compact
	// twice so the segments holding the replica's next record are retired.
	if _, err := p.reg.Remove("gone"); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		for i := 0; i < 5; i++ {
			if _, err := p.reg.ExtendFacts("seen", []byte(fmt.Sprintf("Seen(d%d_%d).", round, i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := p.st.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}

	rep2, rreg2 := startReplica(t, dir, p.url(), 0)
	defer rep2.Close()
	last := p.st.LastLSN()
	waitFor(t, "re-bootstrap convergence", func() bool { return rep2.Applied() == last })
	if rep2.Gauges()["repl_rebootstraps_total"] == 0 {
		t.Fatal("expected a re-bootstrap after compaction")
	}
	if _, ok := rreg2.Get("gone"); ok {
		t.Fatal("deleted database survived re-bootstrap")
	}
	probes := map[string][]string{"seen": {"?- Seen(d1_4).", "?- Seen(X)."}}
	if pf, rf := catalogFingerprint(t, p.reg, probes), catalogFingerprint(t, rreg2, probes); pf != rf {
		t.Fatalf("catalogs differ after re-bootstrap:\nprimary %s\nreplica %s", pf, rf)
	}
}

// TestReplicaWipesOnDivergence replaces the primary with a fresh one
// whose history is shorter: the replica's journal describes mutations the
// new primary never had, so it must wipe and re-seed rather than serve a
// forked catalog.
func TestReplicaWipesOnDivergence(t *testing.T) {
	p := startPrimary(t, t.TempDir(), "127.0.0.1:0")
	if _, err := p.reg.PutProgram("old", []byte("Old(a).")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := p.reg.ExtendFacts("old", []byte(fmt.Sprintf("Old(b%d).", i))); err != nil {
			t.Fatal(err)
		}
	}
	rep, rreg := startReplica(t, t.TempDir(), p.url(), 0)
	defer rep.Close()
	waitFor(t, "initial sync", func() bool { return rep.Applied() == p.st.LastLSN() })
	waitFor(t, "stream connected", func() bool { return rep.Gauges()["repl_connected"] == 1 })

	addr := p.addr
	p.stop()
	// A brand-new primary (lost its disk) on the same address, with a
	// shorter history under a different name.
	p2 := startPrimary(t, t.TempDir(), addr)
	defer p2.stop()
	if _, err := p2.reg.PutProgram("fresh", []byte("Fresh(z).")); err != nil {
		t.Fatal(err)
	}

	waitFor(t, "divergence wipe", func() bool {
		_, oldGone := rreg.Get("old")
		_, freshHere := rreg.Get("fresh")
		return !oldGone && freshHere && rep.Applied() == p2.st.LastLSN()
	})
	if rep.Gauges()["repl_rebootstraps_total"] == 0 {
		t.Fatal("expected a wipe re-bootstrap")
	}
	probes := map[string][]string{"fresh": {"?- Fresh(z).", "?- Fresh(X)."}}
	if pf, rf := catalogFingerprint(t, p2.reg, probes), catalogFingerprint(t, rreg, probes); pf != rf {
		t.Fatalf("catalogs differ after divergence:\nprimary %s\nreplica %s", pf, rf)
	}
}
