package replica

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"

	"funcdb/internal/binspec"
	"funcdb/internal/obs"
	"funcdb/internal/store"
)

// bootstrap brings an unopened replica to a recovered local store. A
// fresh data directory is seeded with the primary's newest snapshot
// first, so the existing recovery path — load newest snapshot, replay the
// journal tail — is the whole bootstrap; a directory that already holds
// data simply recovers and resumes from its own position.
func (r *Replica) bootstrap(ctx context.Context) error {
	empty, err := dirEmpty(r.opts.Store.Dir)
	if err != nil {
		return err
	}
	if empty {
		m, raw, err := r.fetchSnapshot(ctx)
		if err != nil {
			return err
		}
		if len(raw) > 0 {
			if _, err := store.InstallSnapshot(r.opts.Store.Dir, raw); err != nil {
				return err
			}
		}
		r.logf("replica: bootstrap snapshot at lsn %d (%d bytes; primary at lsn %d)",
			m.SnapshotLSN, len(raw), m.LastLSN)
	}
	return r.openStore()
}

// rebootstrap re-seeds a running replica whose position the primary can
// no longer serve. With wipe=false (the primary compacted past our
// cursor) the newer snapshot simply outranks everything local: recovery
// loads it and skips every older journal record. With wipe=true (the
// primary's history diverged below ours) the local journal is deleted
// first — its records describe a history that no longer exists. Either
// way, catalog entries absent from the new snapshot are dropped without
// journaling; the primary's journal is the authority on deletes.
func (r *Replica) rebootstrap(ctx context.Context, wipe bool) error {
	m, raw, err := r.fetchSnapshot(ctx)
	if err != nil {
		return err // keep the current store; we can still serve stale reads
	}
	if r.st != nil {
		if err := r.st.Close(); err != nil {
			return err
		}
		r.st = nil
	}
	r.bootstrapped.Store(false)
	if wipe {
		if err := removeStoreFiles(r.opts.Store.Dir); err != nil {
			return err
		}
	}
	var keep map[string]bool
	if len(raw) > 0 {
		_, names, err := store.InspectSnapshot(raw)
		if err != nil {
			return fmt.Errorf("primary snapshot failed verification: %w", err)
		}
		keep = make(map[string]bool, len(names))
		for _, n := range names {
			keep[n] = true
		}
		if _, err := store.InstallSnapshot(r.opts.Store.Dir, raw); err != nil {
			return err
		}
	}
	for _, e := range r.reg.List() {
		if !keep[e.Name] {
			r.reg.DropLocal(e.Name)
			r.logf("replica: dropped %q (absent from primary snapshot)", e.Name)
		}
	}
	r.logf("replica: re-bootstrap snapshot at lsn %d (primary at lsn %d)", m.SnapshotLSN, m.LastLSN)
	return r.openStore()
}

// openStore opens and recovers the local journal, completing (re)boot.
func (r *Replica) openStore() error {
	opts := r.opts.Store
	// The apply loop takes snapshots itself between records; the store's
	// background trigger could otherwise capture a catalog that has
	// journaled a record it has not yet applied.
	opts.SnapshotEvery = 0
	if opts.Logf == nil {
		opts.Logf = r.logf
	}
	st, err := store.Open(opts)
	if err != nil {
		return err
	}
	stats, err := st.Recover(r.reg)
	if err != nil {
		st.Close()
		return err
	}
	r.st = st
	r.applied.Store(st.LastLSN())
	r.journalLSN.Store(st.LastLSN())
	r.sinceSnap = 0
	r.bootstrapped.Store(true)
	r.logf("replica: recovered %d database(s) (snapshot lsn %d, %d records replayed); resuming after lsn %d",
		stats.Entries, stats.SnapshotLSN, stats.Replayed, r.applied.Load())
	return nil
}

// fetchSnapshot downloads the primary's snapshot with its manifest and
// verifies the byte count, so a torn transfer is rejected before install.
func (r *Replica) fetchSnapshot(ctx context.Context) (binspec.Manifest, []byte, error) {
	ctx, sp := obs.StartSpan(ctx, "fetch_snapshot")
	defer sp.End()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.opts.Primary+"/v1/repl/snapshot", nil)
	if err != nil {
		return binspec.Manifest{}, nil, err
	}
	obs.InjectTraceparent(ctx, req.Header)
	resp, err := r.opts.HTTP.Do(req)
	if err != nil {
		return binspec.Manifest{}, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return binspec.Manifest{}, nil, fmt.Errorf("snapshot request: primary returned %d: %s",
			resp.StatusCode, bytes.TrimSpace(b))
	}
	br := bufio.NewReaderSize(resp.Body, 1<<16)
	rec, err := binspec.ReadRecord(br)
	if err != nil {
		return binspec.Manifest{}, nil, fmt.Errorf("snapshot manifest: %w", err)
	}
	m, err := binspec.DecodeManifest(rec)
	if err != nil {
		return binspec.Manifest{}, nil, err
	}
	raw, err := io.ReadAll(br)
	if err != nil {
		return binspec.Manifest{}, nil, err
	}
	if uint64(len(raw)) != m.SnapshotBytes {
		return binspec.Manifest{}, nil, fmt.Errorf("torn snapshot transfer: got %d bytes, manifest says %d",
			len(raw), m.SnapshotBytes)
	}
	return m, raw, nil
}

// dirEmpty reports whether dir holds no store files (it may not exist).
func dirEmpty(dir string) (bool, error) {
	for _, pat := range []string{"wal-*.wal", "snap-*.fsnap"} {
		paths, err := filepath.Glob(filepath.Join(dir, pat))
		if err != nil {
			return false, err
		}
		if len(paths) > 0 {
			return false, nil
		}
	}
	return true, nil
}

// removeStoreFiles deletes the journal, snapshots and quarantined
// segments, leaving any unrelated files in the directory alone.
func removeStoreFiles(dir string) error {
	for _, pat := range []string{"wal-*.wal", "snap-*.fsnap", "*.orphan", "snap-*.tmp"} {
		paths, err := filepath.Glob(filepath.Join(dir, pat))
		if err != nil {
			return err
		}
		for _, p := range paths {
			if err := os.Remove(p); err != nil {
				return err
			}
		}
	}
	return nil
}
