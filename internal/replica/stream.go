package replica

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"funcdb/internal/binspec"
	"funcdb/internal/obs"
	"funcdb/internal/store"
)

// Sentinel outcomes of one stream episode that change the retry policy.
var (
	// errCompacted: the primary answered 410 — it no longer holds our
	// next record. Recover by re-bootstrapping from its newest snapshot.
	errCompacted = errors.New("replica: primary compacted past our position")
	// errDiverged: the primary's newest LSN is below what we have
	// applied, so our journal describes a history the primary does not
	// have (it was restored or wiped). Recover by wiping and
	// re-bootstrapping.
	errDiverged = errors.New("replica: local position ahead of primary")
)

// stream tails the primary's WAL from just past our applied position,
// journaling and applying each mutation frame. It returns when the
// connection breaks, the watchdog fires, ctx is canceled, or a sentinel
// condition (compaction, divergence) demands a re-bootstrap.
func (r *Replica) stream(ctx context.Context) error {
	from := r.applied.Load() + 1
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(sctx, http.MethodGet,
		r.opts.Primary+"/v1/repl/wal?from="+strconv.FormatUint(from, 10), nil)
	if err != nil {
		return err
	}
	// The episode's trace ID rides along, so a WAL request that fails on
	// the primary is recorded there under the same ID as this episode.
	obs.InjectTraceparent(sctx, req.Header)
	resp, err := r.opts.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return errCompacted
	default:
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("wal request: primary returned %d: %s", resp.StatusCode, bytes.TrimSpace(b))
	}
	r.connected.Store(true)
	defer r.connected.Store(false)

	// A healthy primary sends at least heartbeats; total silence means the
	// connection is dead in a way TCP has not noticed. Cancel the request
	// so the blocked read returns and the session retries.
	watchdog := time.AfterFunc(r.opts.StallTimeout, cancel)
	defer watchdog.Stop()

	br := bufio.NewReaderSize(resp.Body, 1<<16)
	for {
		rec, err := binspec.ReadRecord(br)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("stream read: %w", err)
		}
		watchdog.Reset(r.opts.StallTimeout)
		f, err := binspec.DecodeFrame(rec)
		if err != nil {
			return err
		}
		r.primaryLast.Store(f.PrimaryLast)
		if now := time.Now().UnixMilli(); f.TSMillis > 0 && now > int64(f.TSMillis) {
			r.lagMillis.Store(now - int64(f.TSMillis))
		} else {
			r.lagMillis.Store(0)
		}
		switch f.Kind {
		case binspec.FrameHeartbeat:
			if f.PrimaryLast < r.applied.Load() {
				return fmt.Errorf("%w: primary at lsn %d, applied %d", errDiverged, f.PrimaryLast, r.applied.Load())
			}
		case binspec.FrameMutation:
			if err := r.apply(f.Record); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown frame kind %d", f.Kind)
		}
	}
}

// apply journals one streamed record and applies it to the catalog —
// journal first, exactly like a primary's write-ahead order, so a crash
// between the two replays the record on restart. Apply failures are
// logged and skipped, matching local recovery's policy: one bad mutation
// must not wedge replication.
func (r *Replica) apply(recPayload []byte) error {
	lsn, m, err := store.DecodeMutationRecord(recPayload)
	if err != nil {
		return err
	}
	applied := r.applied.Load()
	if lsn <= applied {
		return nil // duplicate after a reconnect race; already durable
	}
	if lsn != applied+1 {
		return fmt.Errorf("gap in stream: got lsn %d, want %d", lsn, applied+1)
	}
	if err := r.st.AppendReplicated(lsn, m); err != nil {
		return err
	}
	r.journalLSN.Store(lsn)
	if err := r.reg.ApplyAt(m); err != nil {
		r.applyErrors.Add(1)
		r.logf("replica: apply of %s %q (lsn %d) failed: %v", m.Op, m.Name, lsn, err)
	}
	r.applied.Store(lsn)
	r.sinceSnap++
	if every := r.opts.Store.SnapshotEvery; every > 0 && r.sinceSnap >= every {
		if err := r.st.Snapshot(); err != nil {
			r.logf("replica: local snapshot failed: %v", err)
		}
		r.sinceSnap = 0
	}
	return nil
}
