// Package replica follows a primary funcdbd over its replication
// endpoints: it bootstraps the local catalog from a shipped snapshot,
// journals the primary's WAL records into its own store through the same
// recovery machinery a standalone daemon uses, and keeps following the
// stream — so a replica's catalog, versions and answers are the
// primary's, shifted by a measured lag.
//
// The loop is deliberately single-threaded: one goroutine fetches,
// journals, applies and (periodically) snapshots, so the local journal
// position and the catalog state can never be captured out of step.
// Everything around it — reconnection with jittered backoff, resuming
// from the last applied position, full re-bootstrap when the primary has
// compacted past our cursor or diverged — is that goroutine's retry
// policy, not extra concurrency.
package replica

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"sync/atomic"
	"time"

	"funcdb/internal/core"
	"funcdb/internal/obs"
	"funcdb/internal/registry"
	"funcdb/internal/store"
)

// Options configures a replica. Primary and Store.Dir are required.
type Options struct {
	// Primary is the base URL of the primary daemon, e.g.
	// "http://10.0.0.1:8080".
	Primary string
	// Store configures the local journal. SnapshotEvery is honored by the
	// apply loop itself (the background trigger is disabled so snapshots
	// never interleave with a half-applied record).
	Store store.Options
	// Core configures compilation of replicated programs; must match the
	// primary's settings for answers to agree.
	Core core.Options
	// ReadyMaxLag is the largest record lag at which Ready still reports
	// success; zero means DefaultReadyMaxLag.
	ReadyMaxLag uint64
	// StallTimeout reconnects a stream that has delivered nothing — not
	// even a heartbeat — for this long; zero means DefaultStallTimeout.
	StallTimeout time.Duration
	// BackoffMin/BackoffMax bound the jittered reconnect backoff; zero
	// means the defaults.
	BackoffMin, BackoffMax time.Duration
	// HTTP is the client used for all primary requests; nil means a
	// dedicated client with no overall timeout (streams are long-lived).
	HTTP *http.Client
	// Logf receives connection and replay notices; defaults to the
	// process-wide structured logger (slog) at Info level.
	Logf func(format string, args ...any)
	// Recorder, when set, receives one flight-recorder entry per
	// replication episode (bootstrap + stream), traced span by span, and
	// the episode's trace ID rides the traceparent header on every request
	// to the primary — so a broken episode shows up in both processes'
	// recorders under one ID. Typically the daemon's own recorder.
	Recorder *obs.Recorder
}

// Defaults for Options' zero values.
const (
	DefaultReadyMaxLag  = 256
	DefaultStallTimeout = 15 * time.Second
	DefaultBackoffMin   = 100 * time.Millisecond
	DefaultBackoffMax   = 5 * time.Second
)

// Replica is a running replication follower. Create with Start; the
// registry passed to Start fills with the primary's catalog as the
// replica bootstraps and follows.
type Replica struct {
	reg  *registry.Registry
	opts Options
	logf func(string, ...any)

	st *store.Store // nil until bootstrap; owned by the run goroutine

	cancel context.CancelFunc
	done   chan struct{}

	bootstrapped atomic.Bool
	connected    atomic.Bool
	applied      atomic.Uint64
	journalLSN   atomic.Uint64
	primaryLast  atomic.Uint64
	lagMillis    atomic.Int64
	reconnects   atomic.Int64
	rebootstraps atomic.Int64
	applyErrors  atomic.Int64
	sinceSnap    int // records applied since the last local snapshot
}

// Start launches the replication loop and returns immediately; the
// catalog fills in as bootstrap and streaming proceed. Gate traffic with
// Ready. Stop with Close.
func Start(reg *registry.Registry, opts Options) (*Replica, error) {
	if opts.Primary == "" {
		return nil, errors.New("replica: missing primary URL")
	}
	if opts.Store.Dir == "" {
		return nil, errors.New("replica: missing data directory")
	}
	if opts.ReadyMaxLag == 0 {
		opts.ReadyMaxLag = DefaultReadyMaxLag
	}
	if opts.StallTimeout == 0 {
		opts.StallTimeout = DefaultStallTimeout
	}
	if opts.BackoffMin == 0 {
		opts.BackoffMin = DefaultBackoffMin
	}
	if opts.BackoffMax == 0 {
		opts.BackoffMax = DefaultBackoffMax
	}
	if opts.HTTP == nil {
		opts.HTTP = &http.Client{}
	}
	r := &Replica{reg: reg, opts: opts, logf: opts.Logf, done: make(chan struct{})}
	if r.logf == nil {
		r.logf = func(format string, args ...any) {
			slog.Info(fmt.Sprintf(format, args...), "component", "replica")
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	r.cancel = cancel
	go r.run(ctx)
	return r, nil
}

// Close stops the loop and closes the local store. The final store state
// is durable; a restart resumes from the last applied position.
func (r *Replica) Close() error {
	r.cancel()
	<-r.done
	if r.st != nil {
		return r.st.Close()
	}
	return nil
}

// Ready reports whether the replica should serve traffic: bootstrapped,
// connected to the primary, and within the configured lag bound.
func (r *Replica) Ready() error {
	switch {
	case !r.bootstrapped.Load():
		return errors.New("replica: bootstrapping from primary")
	case !r.connected.Load():
		return errors.New("replica: not connected to primary")
	}
	if lag := r.lagRecords(); lag > r.opts.ReadyMaxLag {
		return fmt.Errorf("replica: %d records behind primary (max %d)", lag, r.opts.ReadyMaxLag)
	}
	return nil
}

// Applied returns the highest primary LSN journaled and applied locally.
func (r *Replica) Applied() uint64 { return r.applied.Load() }

// JournalLSN returns the highest primary LSN journaled locally. It is
// stored between journaling and catalog apply, so a registry notifier
// firing during the apply already sees the LSN of the mutation that
// produced the bump — mirroring the primary's own write-ahead order. Safe
// from any goroutine; a watch hub on a replica uses it to tag frames.
func (r *Replica) JournalLSN() uint64 { return r.journalLSN.Load() }

func (r *Replica) lagRecords() uint64 {
	last, applied := r.primaryLast.Load(), r.applied.Load()
	if last <= applied {
		return 0
	}
	return last - applied
}

// Gauges exposes replication state for /metrics; plug into
// server.Config.ExtraGauges (merge with the store's own gauges).
func (r *Replica) Gauges() map[string]int64 {
	g := map[string]int64{
		"repl_bootstrapped":       b2i(r.bootstrapped.Load()),
		"repl_connected":          b2i(r.connected.Load()),
		"repl_applied_lsn":        int64(r.applied.Load()),
		"repl_lag_records":        int64(r.lagRecords()),
		"repl_lag_ms":             r.lagMillis.Load(),
		"repl_reconnects_total":   r.reconnects.Load(),
		"repl_rebootstraps_total": r.rebootstraps.Load(),
		"repl_apply_errors_total": r.applyErrors.Load(),
	}
	if st := r.st; st != nil && r.bootstrapped.Load() {
		for k, v := range st.Gauges() {
			g[k] = v
		}
	}
	return g
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// run is the whole replica: bootstrap once, then stream forever, backing
// off between attempts. Every error path funnels here and turns into a
// retry; only ctx cancellation ends the loop.
func (r *Replica) run(ctx context.Context) {
	defer close(r.done)
	backoff := r.opts.BackoffMin
	for ctx.Err() == nil {
		err := r.session(ctx)
		if ctx.Err() != nil {
			return
		}
		r.connected.Store(false)
		if err != nil {
			r.logf("replica: session ended: %v (reconnecting in ~%v)", err, backoff)
		}
		r.reconnects.Add(1)
		// Full jitter: sleep a uniform fraction of the current backoff so
		// a herd of replicas does not reconnect in lockstep.
		d := time.Duration(rand.Int63n(int64(backoff)) + int64(r.opts.BackoffMin))
		select {
		case <-ctx.Done():
			return
		case <-time.After(d):
		}
		if backoff *= 2; backoff > r.opts.BackoffMax {
			backoff = r.opts.BackoffMax
		}
	}
}

// session runs one connected episode: ensure we are bootstrapped, then
// stream until the connection breaks or the primary tells us our
// position is gone. Each episode runs under its own trace and lands in
// the flight recorder when one is configured.
func (r *Replica) session(ctx context.Context) error {
	start := time.Now()
	var tr *obs.Trace
	if r.opts.Recorder != nil {
		tr = obs.NewTrace()
		ctx = obs.WithTrace(ctx, tr)
	}
	err := r.episode(ctx)
	if tr != nil {
		outcome := obs.OutcomeOK
		if err != nil && !errors.Is(err, context.Canceled) {
			outcome = obs.OutcomeError
		}
		r.opts.Recorder.Offer(obs.TraceEntry{
			ID:         tr.ID(),
			TimeUnixMS: start.UnixMilli(),
			DurUS:      time.Since(start).Microseconds(),
			Endpoint:   "repl_session",
			Outcome:    outcome,
			Node:       "replica",
		}, tr)
	}
	return err
}

func (r *Replica) episode(ctx context.Context) error {
	if !r.bootstrapped.Load() {
		bctx, sp := obs.StartSpan(ctx, "bootstrap")
		err := r.bootstrap(bctx)
		sp.End()
		if err != nil {
			return fmt.Errorf("bootstrap: %w", err)
		}
	}
	sctx, sp := obs.StartSpan(ctx, "stream")
	err := r.stream(sctx)
	sp.End()
	if errors.Is(err, errCompacted) || errors.Is(err, errDiverged) {
		wipe := errors.Is(err, errDiverged)
		r.logf("replica: %v; re-bootstrapping from primary snapshot (wipe=%v)", err, wipe)
		r.rebootstraps.Add(1)
		rctx, sp := obs.StartSpan(ctx, "rebootstrap")
		rerr := r.rebootstrap(rctx, wipe)
		sp.End()
		if rerr != nil {
			return fmt.Errorf("re-bootstrap: %w", rerr)
		}
		return nil // reconnect immediately at the new position
	}
	return err
}
