package registry

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"funcdb/internal/core"
)

const evenSrc = `
Even(0).
Even(T) -> Even(T+2).
`

const meetingsSrc = `
Meets(0, tony).
Next(tony, jan).
Next(jan, tony).
Meets(T, X), Next(X, Y) -> Meets(T+1, Y).
`

func exportDoc(t *testing.T, src string) []byte {
	t.Helper()
	db, err := core.Open(src, core.Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var buf bytes.Buffer
	if err := db.Export(&buf); err != nil {
		t.Fatalf("Export: %v", err)
	}
	return buf.Bytes()
}

func TestPutProgramAndAsk(t *testing.T) {
	r := New(core.Options{})
	e, err := r.PutProgram("even", []byte(evenSrc))
	if err != nil {
		t.Fatalf("PutProgram: %v", err)
	}
	if e.Version != 1 || e.Kind != KindProgram {
		t.Fatalf("entry = %+v", e)
	}
	for q, want := range map[string]bool{
		"?- Even(4).": true,
		"?- Even(5).": false,
	} {
		got, err := e.Ask(context.Background(), q)
		if err != nil {
			t.Fatalf("Ask(%s): %v", q, err)
		}
		if got != want {
			t.Errorf("Ask(%s) = %v, want %v", q, got, want)
		}
		// The congruence-closure path must agree.
		gotCC, err := e.Ask(context.Background(), q, core.WithMethod(core.MethodEquational))
		if err != nil {
			t.Fatalf("Ask cc(%s): %v", q, err)
		}
		if gotCC != want {
			t.Errorf("Ask cc(%s) = %v, want %v", q, gotCC, want)
		}
	}
}

func TestPutSpecAndAsk(t *testing.T) {
	r := New(core.Options{})
	e, err := r.PutSpec("even", exportDoc(t, evenSrc))
	if err != nil {
		t.Fatalf("PutSpec: %v", err)
	}
	if e.Kind != KindSpec {
		t.Fatalf("kind = %v", e.Kind)
	}
	got, err := e.Ask(context.Background(), "Even(4)")
	if err != nil || !got {
		t.Fatalf("Ask(Even(4)) = %v, %v", got, err)
	}
	got, err = e.Ask(context.Background(), "Even(5)", core.WithMethod(core.MethodEquational))
	if err != nil || got {
		t.Fatalf("Ask cc(Even(5)) = %v, %v", got, err)
	}
	// Spec entries cannot evaluate open queries or explain.
	if _, _, err := e.Answers(context.Background(), "?- Even(T).", core.WithDepth(4), core.WithLimit(0)); err == nil {
		t.Error("Answers on a spec entry succeeded")
	}
	if _, err := e.Explain("?- Even(4)."); err == nil {
		t.Error("Explain on a spec entry succeeded")
	}
}

func TestPutSniffsKind(t *testing.T) {
	r := New(core.Options{})
	if e, err := r.Put("a", []byte(evenSrc)); err != nil || e.Kind != KindProgram {
		t.Fatalf("Put program: %v, %v", e, err)
	}
	if e, err := r.Put("b", exportDoc(t, evenSrc)); err != nil || e.Kind != KindSpec {
		t.Fatalf("Put spec: %v, %v", e, err)
	}
}

func TestVersioningAcrossReloadAndRemove(t *testing.T) {
	r := New(core.Options{})
	e1, err := r.PutProgram("db", []byte(evenSrc))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := r.PutProgram("db", []byte(meetingsSrc))
	if err != nil {
		t.Fatal(err)
	}
	if e1.Version != 1 || e2.Version != 2 {
		t.Fatalf("versions = %d, %d", e1.Version, e2.Version)
	}
	// The old entry still answers after the swap (copy-on-write).
	if got, err := e1.Ask(context.Background(), "?- Even(4)."); err != nil || !got {
		t.Fatalf("old entry broken after reload: %v, %v", got, err)
	}
	if removed, err := r.Remove("db"); err != nil || !removed {
		t.Fatalf("Remove = %v, %v", removed, err)
	}
	if removed, err := r.Remove("db"); err != nil || removed {
		t.Fatalf("second Remove = %v, %v", removed, err)
	}
	e3, err := r.PutProgram("db", []byte(evenSrc))
	if err != nil {
		t.Fatal(err)
	}
	if e3.Version != 3 {
		t.Fatalf("version after re-add = %d, want 3", e3.Version)
	}
}

func TestBadInputs(t *testing.T) {
	r := New(core.Options{})
	if _, err := r.PutProgram("bad name!", []byte(evenSrc)); err == nil {
		t.Error("invalid name accepted")
	}
	if _, err := r.PutProgram("x", []byte("Even(")); err == nil {
		t.Error("unparsable program accepted")
	}
	if _, err := r.PutSpec("x", []byte(`{"format":"nope"}`)); err == nil {
		t.Error("bad spec document accepted")
	}
	if _, ok := r.Get("x"); ok {
		t.Error("failed Put left an entry behind")
	}
}

func TestLoadDirAndList(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "even.fdb"), []byte(evenSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "evenspec.json"), exportDoc(t, evenSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README.md"), []byte("ignored"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := New(core.Options{})
	n, err := r.LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if n != 2 || r.Len() != 2 {
		t.Fatalf("loaded %d entries, registry has %d", n, r.Len())
	}
	list := r.List()
	if len(list) != 2 || list[0].Name != "even" || list[1].Name != "evenspec" {
		t.Fatalf("List = %v", list)
	}
}

func TestAnswersEnumeration(t *testing.T) {
	r := New(core.Options{})
	e, err := r.PutProgram("meet", []byte(meetingsSrc))
	if err != nil {
		t.Fatal(err)
	}
	tuples, truncated, err := e.Answers(context.Background(), "?- Meets(T, X).", core.WithDepth(4), core.WithLimit(0))
	if err != nil {
		t.Fatalf("Answers: %v", err)
	}
	if truncated || len(tuples) != 5 {
		t.Fatalf("tuples = %v (truncated %v), want 5 days", tuples, truncated)
	}
	if tuples[0].Term != "0" || tuples[0].Args[0] != "tony" {
		t.Fatalf("first tuple = %+v", tuples[0])
	}
	short, truncated, err := e.Answers(context.Background(), "?- Meets(T, X).", core.WithDepth(4), core.WithLimit(2))
	if err != nil {
		t.Fatal(err)
	}
	if !truncated || len(short) != 2 {
		t.Fatalf("limited tuples = %v (truncated %v)", short, truncated)
	}
	ex, err := e.Explain("?- Meets(2, tony).")
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if !strings.Contains(ex, "true") {
		t.Fatalf("explanation = %q", ex)
	}
}

// TestConcurrentGetPut hammers the copy-on-write snapshot: readers resolve
// and query entries while writers hot-reload the same name. Run under -race.
func TestConcurrentGetPut(t *testing.T) {
	r := New(core.Options{})
	if _, err := r.PutProgram("db", []byte(evenSrc)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				e, ok := r.Get("db")
				if !ok {
					t.Error("entry vanished")
					return
				}
				if _, err := e.Ask(context.Background(), "?- Even(4)."); err != nil {
					t.Errorf("Ask: %v", err)
					return
				}
				r.List()
			}
		}()
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := r.PutProgram("db", []byte(evenSrc)); err != nil {
					t.Errorf("PutProgram: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	e, _ := r.Get("db")
	if e.Version != 21 {
		t.Fatalf("final version = %d, want 21", e.Version)
	}
}

// TestDeleteThenReputVersionsIncrease pins the cache-safety invariant: a
// name deleted and re-created never reuses a version, even across several
// delete/re-put rounds and an intervening ExtendFacts, so a response cache
// keyed on (name, version) can never serve a stale entry for a recreated
// name.
func TestDeleteThenReputVersionsIncrease(t *testing.T) {
	r := New(core.Options{})
	last := uint64(0)
	bump := func(e *Entry, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		if e.Version <= last {
			t.Fatalf("version %d did not increase past %d", e.Version, last)
		}
		last = e.Version
	}
	for round := 0; round < 3; round++ {
		bump(r.PutProgram("db", []byte(evenSrc)))
		bump(r.ExtendFacts("db", []byte("Even(100).")))
		bump(r.PutProgram("db", []byte(meetingsSrc)))
		if removed, err := r.Remove("db"); err != nil || !removed {
			t.Fatalf("round %d: Remove = %v, %v", round, removed, err)
		}
	}
	if last != 9 {
		t.Fatalf("final version = %d, want 9", last)
	}
}

// TestExtendFactsNewVersionAndVisibility: ExtendFacts bumps the version
// and the new facts answer through both the new and the old entry (the
// compiled database is shared; the extension is monotone).
func TestExtendFactsNewVersionAndVisibility(t *testing.T) {
	r := New(core.Options{})
	e1, err := r.PutProgram("db", []byte(evenSrc))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := e1.Ask(context.Background(), "?- Odd(1)."); err == nil && got {
		t.Fatal("Odd(1) true before extend")
	}
	e2, err := r.ExtendFacts("db", []byte("Odd(1). Odd(T) -> Odd(T+2)."))
	if err == nil {
		t.Fatal("rules accepted through ExtendFacts")
	}
	e2, err = r.ExtendFacts("db", []byte("Even(1)."))
	if err != nil {
		t.Fatal(err)
	}
	if e2.Version != e1.Version+1 {
		t.Fatalf("version = %d, want %d", e2.Version, e1.Version+1)
	}
	for _, e := range []*Entry{e1, e2} {
		if got, err := e.Ask(context.Background(), "?- Even(3)."); err != nil || !got {
			t.Fatalf("Even(3) after extend via v%d = %v, %v", e.Version, got, err)
		}
	}
	if _, err := r.ExtendFacts("nosuch", []byte("Even(1).")); err == nil {
		t.Fatal("ExtendFacts on missing name succeeded")
	}
}

// TestObserverOrderAndAbort: the observer sees every mutation in commit
// order with the version it produces, and an observer error aborts the
// mutation (no new version, no visible change).
func TestObserverOrderAndAbort(t *testing.T) {
	r := New(core.Options{})
	var seen []Mutation
	fail := false
	r.SetObserver(func(m Mutation) error {
		if fail {
			return os.ErrPermission
		}
		seen = append(seen, m)
		return nil
	})
	if _, err := r.PutProgram("db", []byte(evenSrc)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ExtendFacts("db", []byte("Even(1).")); err != nil {
		t.Fatal(err)
	}
	if removed, err := r.Remove("db"); err != nil || !removed {
		t.Fatalf("Remove = %v, %v", removed, err)
	}
	want := []struct {
		op Op
		v  uint64
	}{{OpPut, 1}, {OpExtend, 2}, {OpDelete, 0}}
	if len(seen) != len(want) {
		t.Fatalf("observer saw %d mutations, want %d", len(seen), len(want))
	}
	for i, w := range want {
		if seen[i].Op != w.op || seen[i].Version != w.v || seen[i].Name != "db" {
			t.Fatalf("mutation %d = %+v, want op %v version %d", i, seen[i], w.op, w.v)
		}
	}

	fail = true
	if _, err := r.PutProgram("db2", []byte(evenSrc)); err == nil {
		t.Fatal("put committed despite observer error")
	}
	if _, ok := r.Get("db2"); ok {
		t.Fatal("aborted put is visible")
	}
	fail = false
	e, err := r.PutProgram("db2", []byte(evenSrc))
	if err != nil {
		t.Fatal(err)
	}
	if e.Version != 1 {
		t.Fatalf("aborted put consumed a version: got %d, want 1", e.Version)
	}
}

// TestReplayReproducesCatalog: applying the observed mutation stream into
// a fresh registry reproduces names, versions and answers — the contract
// the write-ahead log depends on.
func TestReplayReproducesCatalog(t *testing.T) {
	r := New(core.Options{})
	var journal []Mutation
	r.SetObserver(func(m Mutation) error {
		journal = append(journal, Mutation{Op: m.Op, Name: m.Name, Version: m.Version, Payload: bytes.Clone(m.Payload)})
		return nil
	})
	mustPut := func(name, src string) {
		t.Helper()
		if _, err := r.Put(name, []byte(src)); err != nil {
			t.Fatal(err)
		}
	}
	mustPut("even", evenSrc)
	mustPut("meet", meetingsSrc)
	if _, err := r.ExtendFacts("even", []byte("Even(1).")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put("spec", exportDoc(t, evenSrc)); err != nil {
		t.Fatal(err)
	}
	if removed, err := r.Remove("meet"); err != nil || !removed {
		t.Fatalf("Remove = %v, %v", removed, err)
	}
	mustPut("meet", meetingsSrc)

	r2 := New(core.Options{})
	for _, m := range journal {
		if err := r2.ApplyAt(m); err != nil {
			t.Fatalf("replay %v %q: %v", m.Op, m.Name, err)
		}
	}
	if r2.Len() != r.Len() {
		t.Fatalf("replayed %d entries, want %d", r2.Len(), r.Len())
	}
	for _, e := range r.List() {
		e2, ok := r2.Get(e.Name)
		if !ok {
			t.Fatalf("replay lost %q", e.Name)
		}
		if e2.Version != e.Version || e2.Kind != e.Kind {
			t.Fatalf("%q: replayed (v%d, %s), want (v%d, %s)", e.Name, e2.Version, e2.Kind, e.Version, e.Kind)
		}
	}
	for _, q := range []string{"?- Even(2).", "?- Even(3).", "?- Even(5)."} {
		want, err := mustGet(t, r, "even").Ask(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := mustGet(t, r2, "even").Ask(context.Background(), q)
		if err != nil || got != want {
			t.Fatalf("%s: replayed %v, want %v (err %v)", q, got, want, err)
		}
	}
}

func mustGet(t *testing.T, r *Registry, name string) *Entry {
	t.Helper()
	e, ok := r.Get(name)
	if !ok {
		t.Fatalf("missing entry %q", name)
	}
	return e
}
