package registry

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"funcdb/internal/core"
)

const evenSrc = `
Even(0).
Even(T) -> Even(T+2).
`

const meetingsSrc = `
Meets(0, tony).
Next(tony, jan).
Next(jan, tony).
Meets(T, X), Next(X, Y) -> Meets(T+1, Y).
`

func exportDoc(t *testing.T, src string) []byte {
	t.Helper()
	db, err := core.Open(src, core.Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var buf bytes.Buffer
	if err := db.Export(&buf); err != nil {
		t.Fatalf("Export: %v", err)
	}
	return buf.Bytes()
}

func TestPutProgramAndAsk(t *testing.T) {
	r := New(core.Options{})
	e, err := r.PutProgram("even", []byte(evenSrc))
	if err != nil {
		t.Fatalf("PutProgram: %v", err)
	}
	if e.Version != 1 || e.Kind != KindProgram {
		t.Fatalf("entry = %+v", e)
	}
	for q, want := range map[string]bool{
		"?- Even(4).": true,
		"?- Even(5).": false,
	} {
		got, err := e.Ask(q, false)
		if err != nil {
			t.Fatalf("Ask(%s): %v", q, err)
		}
		if got != want {
			t.Errorf("Ask(%s) = %v, want %v", q, got, want)
		}
		// The congruence-closure path must agree.
		gotCC, err := e.Ask(q, true)
		if err != nil {
			t.Fatalf("Ask cc(%s): %v", q, err)
		}
		if gotCC != want {
			t.Errorf("Ask cc(%s) = %v, want %v", q, gotCC, want)
		}
	}
}

func TestPutSpecAndAsk(t *testing.T) {
	r := New(core.Options{})
	e, err := r.PutSpec("even", exportDoc(t, evenSrc))
	if err != nil {
		t.Fatalf("PutSpec: %v", err)
	}
	if e.Kind != KindSpec {
		t.Fatalf("kind = %v", e.Kind)
	}
	got, err := e.Ask("Even(4)", false)
	if err != nil || !got {
		t.Fatalf("Ask(Even(4)) = %v, %v", got, err)
	}
	got, err = e.Ask("Even(5)", true)
	if err != nil || got {
		t.Fatalf("Ask cc(Even(5)) = %v, %v", got, err)
	}
	// Spec entries cannot evaluate open queries or explain.
	if _, _, err := e.Answers("?- Even(T).", 4, 0); err == nil {
		t.Error("Answers on a spec entry succeeded")
	}
	if _, err := e.Explain("?- Even(4)."); err == nil {
		t.Error("Explain on a spec entry succeeded")
	}
}

func TestPutSniffsKind(t *testing.T) {
	r := New(core.Options{})
	if e, err := r.Put("a", []byte(evenSrc)); err != nil || e.Kind != KindProgram {
		t.Fatalf("Put program: %v, %v", e, err)
	}
	if e, err := r.Put("b", exportDoc(t, evenSrc)); err != nil || e.Kind != KindSpec {
		t.Fatalf("Put spec: %v, %v", e, err)
	}
}

func TestVersioningAcrossReloadAndRemove(t *testing.T) {
	r := New(core.Options{})
	e1, err := r.PutProgram("db", []byte(evenSrc))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := r.PutProgram("db", []byte(meetingsSrc))
	if err != nil {
		t.Fatal(err)
	}
	if e1.Version != 1 || e2.Version != 2 {
		t.Fatalf("versions = %d, %d", e1.Version, e2.Version)
	}
	// The old entry still answers after the swap (copy-on-write).
	if got, err := e1.Ask("?- Even(4).", false); err != nil || !got {
		t.Fatalf("old entry broken after reload: %v, %v", got, err)
	}
	if !r.Remove("db") {
		t.Fatal("Remove returned false")
	}
	if r.Remove("db") {
		t.Fatal("second Remove returned true")
	}
	e3, err := r.PutProgram("db", []byte(evenSrc))
	if err != nil {
		t.Fatal(err)
	}
	if e3.Version != 3 {
		t.Fatalf("version after re-add = %d, want 3", e3.Version)
	}
}

func TestBadInputs(t *testing.T) {
	r := New(core.Options{})
	if _, err := r.PutProgram("bad name!", []byte(evenSrc)); err == nil {
		t.Error("invalid name accepted")
	}
	if _, err := r.PutProgram("x", []byte("Even(")); err == nil {
		t.Error("unparsable program accepted")
	}
	if _, err := r.PutSpec("x", []byte(`{"format":"nope"}`)); err == nil {
		t.Error("bad spec document accepted")
	}
	if _, ok := r.Get("x"); ok {
		t.Error("failed Put left an entry behind")
	}
}

func TestLoadDirAndList(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "even.fdb"), []byte(evenSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "evenspec.json"), exportDoc(t, evenSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README.md"), []byte("ignored"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := New(core.Options{})
	n, err := r.LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if n != 2 || r.Len() != 2 {
		t.Fatalf("loaded %d entries, registry has %d", n, r.Len())
	}
	list := r.List()
	if len(list) != 2 || list[0].Name != "even" || list[1].Name != "evenspec" {
		t.Fatalf("List = %v", list)
	}
}

func TestAnswersEnumeration(t *testing.T) {
	r := New(core.Options{})
	e, err := r.PutProgram("meet", []byte(meetingsSrc))
	if err != nil {
		t.Fatal(err)
	}
	tuples, truncated, err := e.Answers("?- Meets(T, X).", 4, 0)
	if err != nil {
		t.Fatalf("Answers: %v", err)
	}
	if truncated || len(tuples) != 5 {
		t.Fatalf("tuples = %v (truncated %v), want 5 days", tuples, truncated)
	}
	if tuples[0].Term != "0" || tuples[0].Args[0] != "tony" {
		t.Fatalf("first tuple = %+v", tuples[0])
	}
	short, truncated, err := e.Answers("?- Meets(T, X).", 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !truncated || len(short) != 2 {
		t.Fatalf("limited tuples = %v (truncated %v)", short, truncated)
	}
	ex, err := e.Explain("?- Meets(2, tony).")
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if !strings.Contains(ex, "true") {
		t.Fatalf("explanation = %q", ex)
	}
}

// TestConcurrentGetPut hammers the copy-on-write snapshot: readers resolve
// and query entries while writers hot-reload the same name. Run under -race.
func TestConcurrentGetPut(t *testing.T) {
	r := New(core.Options{})
	if _, err := r.PutProgram("db", []byte(evenSrc)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				e, ok := r.Get("db")
				if !ok {
					t.Error("entry vanished")
					return
				}
				if _, err := e.Ask("?- Even(4).", false); err != nil {
					t.Errorf("Ask: %v", err)
					return
				}
				r.List()
			}
		}()
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := r.PutProgram("db", []byte(evenSrc)); err != nil {
					t.Errorf("PutProgram: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	e, _ := r.Get("db")
	if e.Version != 21 {
		t.Fatalf("final version = %d, want 21", e.Version)
	}
}
