package registry

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"funcdb/internal/core"
)

// TestStressConcurrentReadersAndWriter hammers one registry name with
// lock-free snapshot reads (Ask, Answers, AskBatch) while a writer extends
// the database's facts across version bumps — alternating monotone
// extensions (new data constants) with depth-increasing ones that force a
// full recompile. Every read must succeed and monotone truths must never
// flip back to false. Run under -race in CI: this is the proof that
// snapshot publication is safe across versions.
func TestStressConcurrentReadersAndWriter(t *testing.T) {
	r := New(core.Options{})
	if _, err := r.PutProgram("db", []byte(meetingsSrc)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	stop := make(chan struct{})
	var wg sync.WaitGroup

	const rounds = 20
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < rounds; i++ {
			var facts string
			if i%2 == 0 {
				// New data constant, no mixed symbols: monotone fast path.
				facts = fmt.Sprintf("Next(guest%d, tony).", i)
			} else {
				// Deeper ground term: forces a recompile.
				facts = fmt.Sprintf("Meets(%d, extra).", i)
			}
			if _, err := r.ExtendFacts("db", []byte(facts)); err != nil {
				t.Errorf("ExtendFacts round %d: %v", i, err)
				return
			}
		}
	}()

	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				e, ok := r.Get("db")
				if !ok {
					t.Error("entry vanished")
					return
				}
				// Meets(8, tony) holds in the seed program; extensions are
				// monotone, so it can never become false.
				got, err := e.Ask(ctx, `?- Meets(8, tony).`)
				if err != nil {
					t.Errorf("reader %d: Ask: %v", g, err)
					return
				}
				if !got {
					t.Errorf("reader %d: monotone truth flipped to false at version %d", g, e.Version)
					return
				}
				switch i % 3 {
				case 1:
					tuples, _, err := e.Answers(ctx, `?- Meets(T, X).`, core.WithDepth(4), core.WithLimit(50))
					if err != nil {
						t.Errorf("reader %d: Answers: %v", g, err)
						return
					}
					if len(tuples) == 0 {
						t.Errorf("reader %d: empty answer set at version %d", g, e.Version)
						return
					}
				case 2:
					res, err := e.AskBatch(ctx, []string{
						`?- Meets(0, tony).`,
						`?- Meets(1, tony).`,
						`?- Next(tony, jan).`,
					}, 3)
					if err != nil {
						t.Errorf("reader %d: AskBatch: %v", g, err)
						return
					}
					if !res[0].OK || res[1].OK || !res[2].OK {
						t.Errorf("reader %d: batch = %v %v %v", g, res[0].OK, res[1].OK, res[2].OK)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
