// Package registry is a concurrent-safe, versioned catalog of named
// compiled databases — the serving substrate behind the fdbd daemon.
//
// The paper's central promise is that a finite specification answers
// queries about an infinite fixpoint "after the rules are forgotten"; the
// compiled artifact is therefore exactly the unit a server loads, names and
// hot-swaps. An Entry is either a full program (compiled by internal/core,
// with its graph/equational/temporal specifications built lazily on first
// query, race-free under the Database's internal lock) or a standalone
// specification document (package specio), which answers membership with
// the rules genuinely absent.
//
// The catalog itself is a copy-on-write snapshot behind an atomic pointer:
// readers resolve names lock-free on every request, writers clone the map,
// swap it atomically and bump the entry's version. A version never repeats
// for a name within one registry, which lets response caches key on
// (name, version) and survive hot reloads without invalidation scans.
package registry

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"funcdb/internal/core"
	"funcdb/internal/specio"
	"funcdb/internal/symbols"
	"funcdb/internal/term"
)

// Kind discriminates what an Entry was loaded from.
type Kind string

const (
	// KindProgram marks an entry compiled from .fdb rule source.
	KindProgram Kind = "program"
	// KindSpec marks an entry loaded from a specio JSON document (no
	// rules available: membership only).
	KindSpec Kind = "spec"
)

// Entry is one immutable catalog slot: once published it is never modified,
// only replaced wholesale by a reload. All query methods are safe for
// concurrent use.
type Entry struct {
	// Name is the catalog key.
	Name string
	// Version counts loads of this name, starting at 1.
	Version uint64
	// Kind reports what the entry was loaded from.
	Kind Kind
	// SourceBytes is the size of the uploaded artifact.
	SourceBytes int

	db  *core.Database    // KindProgram
	st  *specio.Standalone // KindSpec
	doc *specio.Document   // KindSpec
}

// AnswerTuple is one ground answer: the rendered functional component
// (empty for purely relational answers) and the data constants.
type AnswerTuple struct {
	Term string   `json:"term,omitempty"`
	Args []string `json:"args,omitempty"`
}

// Database returns the compiled database of a program entry (nil for spec
// entries).
func (e *Entry) Database() *core.Database { return e.db }

// Document returns the loaded document of a spec entry (nil for program
// entries).
func (e *Entry) Document() *specio.Document { return e.doc }

// Ask answers a yes-no query. Program entries take surface syntax
// ("?- Even(4)."); spec entries take the ground-query syntax of
// specio.ParseGroundQuery ("Even(4)"), answered by the DFA walk, or by
// congruence closure when viaCC is set.
func (e *Entry) Ask(q string, viaCC bool) (bool, error) {
	switch e.Kind {
	case KindProgram:
		if viaCC {
			return e.db.AskCC(q)
		}
		return e.db.Ask(q)
	case KindSpec:
		pred, tm, args, err := e.st.ParseGroundQuery(q)
		if err != nil {
			return false, err
		}
		if viaCC {
			return e.st.HasViaCongruence(pred, tm, args...), nil
		}
		return e.st.Has(pred, tm, args...)
	}
	return false, fmt.Errorf("registry: unknown entry kind %q", e.Kind)
}

// Answers evaluates an open query and enumerates ground answers to the
// given term depth, stopping after limit tuples (limit <= 0 means no cap).
// It reports whether enumeration was truncated by the limit. Spec entries
// carry no rules and cannot evaluate open queries.
func (e *Entry) Answers(q string, depth, limit int) (tuples []AnswerTuple, truncated bool, err error) {
	if e.Kind != KindProgram {
		return nil, false, fmt.Errorf("registry: %q is a standalone specification; open queries need a program entry", e.Name)
	}
	ans, err := e.db.Answers(q)
	if err != nil {
		return nil, false, err
	}
	u := e.db.Universe()
	tab := e.db.Tab()
	err = ans.Enumerate(depth, func(ft term.Term, args []symbols.ConstID) bool {
		if limit > 0 && len(tuples) >= limit {
			truncated = true
			return false
		}
		tu := AnswerTuple{}
		if ft != term.None {
			tu.Term = u.CompactString(ft, tab)
		}
		for _, c := range args {
			tu.Args = append(tu.Args, tab.ConstName(c))
		}
		tuples = append(tuples, tu)
		return true
	})
	if err != nil {
		return nil, false, err
	}
	return tuples, truncated, nil
}

// Explain justifies a ground query's verdict with the Link-rule trace.
func (e *Entry) Explain(q string) (string, error) {
	if e.Kind != KindProgram {
		return "", fmt.Errorf("registry: %q is a standalone specification; explain needs a program entry", e.Name)
	}
	return e.db.ExplainText(q)
}

// Stats returns the specification sizes of a program entry, forcing the
// graph specification on first use.
func (e *Entry) Stats() (core.Stats, error) {
	if e.Kind != KindProgram {
		return core.Stats{}, fmt.Errorf("registry: %q has no engine statistics", e.Name)
	}
	return e.db.Stats()
}

// snapshot is the immutable catalog state; Registry swaps whole snapshots.
type snapshot struct {
	entries map[string]*Entry
}

// Registry is the catalog. The zero value is not usable; call New.
type Registry struct {
	// mu serializes writers only; readers go through the atomic snapshot.
	mu   sync.Mutex
	snap atomic.Pointer[snapshot]
	// versions outlives entry removal so a name re-added after Remove
	// still never repeats a version.
	versions map[string]uint64
	opts     core.Options
}

// New returns an empty registry; opts configure compilation of program
// entries.
func New(opts core.Options) *Registry {
	r := &Registry{versions: make(map[string]uint64), opts: opts}
	r.snap.Store(&snapshot{entries: map[string]*Entry{}})
	return r
}

var nameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$`)

// ValidName reports whether name is an acceptable catalog key.
func ValidName(name string) bool { return nameRE.MatchString(name) }

// Get resolves a name lock-free against the current snapshot.
func (r *Registry) Get(name string) (*Entry, bool) {
	e, ok := r.snap.Load().entries[name]
	return e, ok
}

// Len returns the number of entries in the current snapshot.
func (r *Registry) Len() int { return len(r.snap.Load().entries) }

// List returns the current entries sorted by name.
func (r *Registry) List() []*Entry {
	snap := r.snap.Load()
	out := make([]*Entry, 0, len(snap.entries))
	for _, e := range snap.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// PutProgram compiles .fdb source and publishes it under name, replacing
// any existing entry atomically (in-flight queries keep using the old
// entry; new requests see the new one).
func (r *Registry) PutProgram(name string, src []byte) (*Entry, error) {
	if !ValidName(name) {
		return nil, fmt.Errorf("registry: invalid database name %q", name)
	}
	db, err := core.Open(string(src), r.opts)
	if err != nil {
		return nil, fmt.Errorf("registry: compile %q: %w", name, err)
	}
	e := &Entry{Name: name, Kind: KindProgram, SourceBytes: len(src), db: db}
	r.publish(e)
	return e, nil
}

// PutSpec parses a specio JSON document and publishes it under name.
func (r *Registry) PutSpec(name string, raw []byte) (*Entry, error) {
	if !ValidName(name) {
		return nil, fmt.Errorf("registry: invalid database name %q", name)
	}
	doc, err := specio.Read(strings.NewReader(string(raw)))
	if err != nil {
		return nil, fmt.Errorf("registry: load %q: %w", name, err)
	}
	st, err := specio.Load(doc)
	if err != nil {
		return nil, fmt.Errorf("registry: load %q: %w", name, err)
	}
	e := &Entry{Name: name, Kind: KindSpec, SourceBytes: len(raw), st: st, doc: doc}
	r.publish(e)
	return e, nil
}

// Put sniffs the payload: a JSON object is a specification document,
// anything else is program source.
func (r *Registry) Put(name string, raw []byte) (*Entry, error) {
	if looksLikeJSON(raw) {
		return r.PutSpec(name, raw)
	}
	return r.PutProgram(name, raw)
}

func looksLikeJSON(raw []byte) bool {
	for _, b := range raw {
		switch b {
		case ' ', '\t', '\r', '\n':
			continue
		case '{':
			return true
		default:
			return false
		}
	}
	return false
}

// publish installs e in a fresh copy-on-write snapshot under the writer
// lock, assigning the next version for its name.
func (r *Registry) publish(e *Entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.versions[e.Name]++
	e.Version = r.versions[e.Name]
	old := r.snap.Load()
	next := &snapshot{entries: make(map[string]*Entry, len(old.entries)+1)}
	for k, v := range old.entries {
		next.entries[k] = v
	}
	next.entries[e.Name] = e
	r.snap.Store(next)
}

// Remove deletes name from the catalog, reporting whether it was present.
// The version counter is retained so a later re-add does not reuse
// versions.
func (r *Registry) Remove(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.snap.Load()
	if _, ok := old.entries[name]; !ok {
		return false
	}
	next := &snapshot{entries: make(map[string]*Entry, len(old.entries))}
	for k, v := range old.entries {
		if k != name {
			next.entries[k] = v
		}
	}
	r.snap.Store(next)
	return true
}

// LoadDir preloads every *.fdb (program) and *.json (spec document) file
// in dir, named after the file without its extension. It stops at the
// first failing file.
func (r *Registry) LoadDir(dir string) (int, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		return 0, err
	}
	sort.Strings(names)
	n := 0
	for _, path := range names {
		ext := filepath.Ext(path)
		if ext != ".fdb" && ext != ".json" {
			continue
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return n, err
		}
		name := strings.TrimSuffix(filepath.Base(path), ext)
		if ext == ".fdb" {
			_, err = r.PutProgram(name, raw)
		} else {
			_, err = r.PutSpec(name, raw)
		}
		if err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}
