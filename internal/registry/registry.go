// Package registry is a concurrent-safe, versioned catalog of named
// compiled databases — the serving substrate behind the fdbd daemon.
//
// The paper's central promise is that a finite specification answers
// queries about an infinite fixpoint "after the rules are forgotten"; the
// compiled artifact is therefore exactly the unit a server loads, names and
// hot-swaps. An Entry is either a full program (compiled by internal/core,
// with its graph/equational/temporal specifications built lazily on first
// query, race-free under the Database's internal lock) or a standalone
// specification document (package specio), which answers membership with
// the rules genuinely absent.
//
// The catalog itself is a copy-on-write snapshot behind an atomic pointer:
// readers resolve names lock-free on every request, writers clone the map,
// swap it atomically and bump the entry's version. A version never repeats
// for a name within one registry, which lets response caches key on
// (name, version) and survive hot reloads without invalidation scans.
package registry

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"funcdb/internal/core"
	"funcdb/internal/obs"
	"funcdb/internal/specio"
	"funcdb/internal/symbols"
	"funcdb/internal/term"
)

// ErrNotFound reports a mutation against a name absent from the catalog.
var ErrNotFound = errors.New("registry: no such database")

// ErrUnknownDatabase is ErrNotFound under the name the façade exports.
var ErrUnknownDatabase = ErrNotFound

// Kind discriminates what an Entry was loaded from.
type Kind string

const (
	// KindProgram marks an entry compiled from .fdb rule source.
	KindProgram Kind = "program"
	// KindSpec marks an entry loaded from a specio JSON document (no
	// rules available: membership only).
	KindSpec Kind = "spec"
)

// Entry is one immutable catalog slot: once published it is never modified,
// only replaced wholesale by a reload. All query methods are safe for
// concurrent use.
type Entry struct {
	// Name is the catalog key.
	Name string
	// Version counts loads of this name, starting at 1.
	Version uint64
	// Kind reports what the entry was loaded from.
	Kind Kind
	// SourceBytes is the size of the uploaded artifact.
	SourceBytes int

	db  *core.Database     // KindProgram
	st  *specio.Standalone // KindSpec
	doc *specio.Document   // KindSpec
}

// AnswerTuple is one ground answer: the rendered functional component
// (empty for purely relational answers) and the data constants.
type AnswerTuple struct {
	Term string   `json:"term,omitempty"`
	Args []string `json:"args,omitempty"`
}

// Database returns the compiled database of a program entry (nil for spec
// entries).
func (e *Entry) Database() *core.Database { return e.db }

// Document returns the loaded document of a spec entry (nil for program
// entries).
func (e *Entry) Document() *specio.Document { return e.doc }

// Ask answers a yes-no query, honoring ctx and the core query options.
// Program entries take surface syntax ("?- Even(4).") and evaluate on the
// database's immutable snapshot — lock-free, through the snapshot's
// compiled-plan cache. Spec entries take the ground-query syntax of
// specio.ParseGroundQuery ("Even(4)"), answered by the DFA walk, or by
// congruence closure under core.WithMethod(core.MethodEquational). An
// expired ctx yields an error matching core.ErrCanceled.
func (e *Entry) Ask(ctx context.Context, q string, opts ...core.Option) (bool, error) {
	switch e.Kind {
	case KindProgram:
		return e.db.Ask(ctx, q, opts...)
	case KindSpec:
		op := core.BuildOpts(opts...)
		pred, tm, args, err := e.st.ParseGroundQuery(q)
		if err != nil {
			return false, err
		}
		if op.Method == core.MethodEquational {
			return e.st.HasViaCongruence(pred, tm, args...), nil
		}
		return e.st.Has(pred, tm, args...)
	}
	return false, fmt.Errorf("registry: unknown entry kind %q", e.Kind)
}

// Prepare compiles a query against a program entry's current snapshot (a
// plan-cache hit when the shape was seen before). The returned plan can be
// executed many times without re-parsing; its Shape is the canonical cache
// key response caches should use. Spec entries have no compiled plans.
func (e *Entry) Prepare(ctx context.Context, q string) (*core.Plan, error) {
	if e.Kind != KindProgram {
		return nil, fmt.Errorf("registry: %q is a standalone specification; prepared plans need a program entry", e.Name)
	}
	return e.db.Prepare(ctx, q)
}

// Answers evaluates an open query and enumerates ground answers, honoring
// ctx and the core query options: core.WithDepth bounds the enumeration
// term depth, core.WithLimit stops after that many tuples (0 = no cap). It
// reports whether enumeration was truncated by the limit. Program entries
// evaluate on the database's immutable snapshot, and rendering goes through
// the Answers value itself (the terms may live in query-local scratch
// arenas the database never sees). Spec entries carry no rules and cannot
// evaluate open queries.
func (e *Entry) Answers(ctx context.Context, q string, opts ...core.Option) (tuples []AnswerTuple, truncated bool, err error) {
	if e.Kind != KindProgram {
		return nil, false, fmt.Errorf("registry: %q is a standalone specification; open queries need a program entry", e.Name)
	}
	op := core.BuildOpts(opts...)
	ans, err := e.db.Answers(ctx, q, opts...)
	if err != nil {
		return nil, false, err
	}
	ectx, esp := obs.StartSpan(ctx, "enumerate")
	defer esp.End()
	err = ans.EnumerateContext(ectx, op.Depth, func(ft term.Term, args []symbols.ConstID) bool {
		if op.Limit > 0 && len(tuples) >= op.Limit {
			truncated = true
			return false
		}
		tu := AnswerTuple{}
		if ft != term.None {
			tu.Term = ans.CompactTermString(ft)
		}
		for _, c := range args {
			tu.Args = append(tu.Args, ans.ConstName(c))
		}
		tuples = append(tuples, tu)
		return true
	})
	if err != nil {
		return nil, false, err
	}
	return tuples, truncated, nil
}

// AskBatch evaluates many yes-no queries concurrently against one snapshot
// of a program entry, with a bounded worker pool. See core.Snapshot.AskBatch.
func (e *Entry) AskBatch(ctx context.Context, queries []string, workers int) ([]core.BatchResult, error) {
	if e.Kind != KindProgram {
		out := make([]core.BatchResult, len(queries))
		for i, q := range queries {
			ok, err := e.Ask(ctx, q)
			out[i] = core.BatchResult{Query: q, OK: ok, Err: err}
		}
		return out, nil
	}
	return e.db.AskBatch(ctx, queries, workers)
}

// Explain justifies a ground query's verdict with the Link-rule trace.
func (e *Entry) Explain(q string) (string, error) {
	if e.Kind != KindProgram {
		return "", fmt.Errorf("registry: %q is a standalone specification; explain needs a program entry", e.Name)
	}
	return e.db.ExplainText(q)
}

// Stats returns the specification sizes of a program entry, forcing the
// graph specification on first use.
func (e *Entry) Stats() (core.Stats, error) {
	if e.Kind != KindProgram {
		return core.Stats{}, fmt.Errorf("registry: %q has no engine statistics", e.Name)
	}
	return e.db.Stats()
}

// Op discriminates catalog mutations for observers and replay.
type Op uint8

const (
	// OpPut publishes a new entry compiled from Payload (program source or
	// a spec document, sniffed exactly like Put).
	OpPut Op = 1
	// OpExtend adds the ground facts in Payload to a program entry,
	// producing a new version of the same database.
	OpExtend Op = 2
	// OpDelete removes Name from the catalog.
	OpDelete Op = 3
)

// String names the operation for logs.
func (o Op) String() string {
	switch o {
	case OpPut:
		return "put"
	case OpExtend:
		return "extend"
	case OpDelete:
		return "delete"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Mutation describes one committed (or committing) catalog change. It is
// self-contained: replaying the same sequence of mutations into a fresh
// registry reproduces the same entries with the same versions, which is
// what the durability layer's write-ahead log relies on.
type Mutation struct {
	Op   Op
	Name string
	// Version is the version the mutation produces (0 for OpDelete).
	Version uint64
	// Payload is the uploaded artifact (OpPut) or the facts source text
	// (OpExtend); nil for OpDelete.
	Payload []byte
}

// Observer is called for every mutation, after validation but before the
// new catalog snapshot becomes visible, under the writer lock — so calls
// arrive in exactly the commit order and a returned error aborts the
// mutation (write-ahead semantics). Observers must not call back into the
// registry.
type Observer func(Mutation) error

// Notifier is called after a catalog change has become visible, still
// under the writer lock, so calls arrive in exactly the commit order:
// version is the installed entry's version, or 0 when name was removed.
// Unlike Observer it cannot veto anything and it fires on every install
// path — including replays, restores and local drops that bypass the
// observer — which is what lets a watch hub on a replica see the same
// version bumps a primary's hub does. Notifiers must only enqueue and
// return: no blocking, no calls back into the registry.
type Notifier func(name string, version uint64)

// snapshot is the immutable catalog state; Registry swaps whole snapshots.
type snapshot struct {
	entries map[string]*Entry
}

// Registry is the catalog. The zero value is not usable; call New.
type Registry struct {
	// mu serializes writers only; readers go through the atomic snapshot.
	mu   sync.Mutex
	snap atomic.Pointer[snapshot]
	// versions outlives entry removal so a name re-added after Remove
	// still never repeats a version.
	versions map[string]uint64
	opts     core.Options
	obs      Observer
	notify   Notifier
}

// SetObserver installs the mutation observer (nil disables). It is meant
// to be set once, before the registry starts taking traffic.
func (r *Registry) SetObserver(obs Observer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.obs = obs
}

// SetNotifier installs the post-commit change notifier (nil disables). It
// is meant to be set once, before the registry starts taking traffic.
func (r *Registry) SetNotifier(n Notifier) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.notify = n
}

// New returns an empty registry; opts configure compilation of program
// entries.
func New(opts core.Options) *Registry {
	r := &Registry{versions: make(map[string]uint64), opts: opts}
	r.snap.Store(&snapshot{entries: map[string]*Entry{}})
	return r
}

var nameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$`)

// ValidName reports whether name is an acceptable catalog key.
func ValidName(name string) bool { return nameRE.MatchString(name) }

// Get resolves a name lock-free against the current snapshot.
func (r *Registry) Get(name string) (*Entry, bool) {
	e, ok := r.snap.Load().entries[name]
	return e, ok
}

// Len returns the number of entries in the current snapshot.
func (r *Registry) Len() int { return len(r.snap.Load().entries) }

// List returns the current entries sorted by name.
func (r *Registry) List() []*Entry {
	snap := r.snap.Load()
	out := make([]*Entry, 0, len(snap.entries))
	for _, e := range snap.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// buildProgram compiles .fdb source into an unpublished entry.
func (r *Registry) buildProgram(name string, src []byte) (*Entry, error) {
	if !ValidName(name) {
		return nil, fmt.Errorf("registry: invalid database name %q", name)
	}
	db, err := core.Open(string(src), r.opts)
	if err != nil {
		return nil, fmt.Errorf("registry: compile %q: %w", name, err)
	}
	return &Entry{Name: name, Kind: KindProgram, SourceBytes: len(src), db: db}, nil
}

// buildSpec loads a specio document into an unpublished entry.
func (r *Registry) buildSpec(name string, doc *specio.Document, sourceBytes int) (*Entry, error) {
	if !ValidName(name) {
		return nil, fmt.Errorf("registry: invalid database name %q", name)
	}
	st, err := specio.Load(doc)
	if err != nil {
		return nil, fmt.Errorf("registry: load %q: %w", name, err)
	}
	return &Entry{Name: name, Kind: KindSpec, SourceBytes: sourceBytes, st: st, doc: doc}, nil
}

// PutProgram compiles .fdb source and publishes it under name, replacing
// any existing entry atomically (in-flight queries keep using the old
// entry; new requests see the new one).
func (r *Registry) PutProgram(name string, src []byte) (*Entry, error) {
	e, err := r.buildProgram(name, src)
	if err != nil {
		return nil, err
	}
	if err := r.publish(e, OpPut, src); err != nil {
		return nil, err
	}
	return e, nil
}

// PutSpec parses a specio JSON document and publishes it under name.
func (r *Registry) PutSpec(name string, raw []byte) (*Entry, error) {
	doc, err := specio.Read(strings.NewReader(string(raw)))
	if err != nil {
		return nil, fmt.Errorf("registry: load %q: %w", name, err)
	}
	e, err := r.buildSpec(name, doc, len(raw))
	if err != nil {
		return nil, err
	}
	if err := r.publish(e, OpPut, raw); err != nil {
		return nil, err
	}
	return e, nil
}

// ExtendFacts adds ground facts (surface syntax) to the program entry
// under name and publishes the extended database as a new version of the
// same name. Caches keyed on (name, version) therefore invalidate exactly
// as if the program had been re-uploaded; in-flight readers of the old
// entry share the underlying database and see the monotone extension.
func (r *Registry) ExtendFacts(name string, facts []byte) (*Entry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	old, ok := r.snap.Load().entries[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if old.Kind != KindProgram {
		return nil, fmt.Errorf("registry: %q is a standalone specification; facts need a program entry", name)
	}
	if err := old.db.Extend(string(facts)); err != nil {
		return nil, err
	}
	e := &Entry{Name: name, Kind: KindProgram, SourceBytes: old.SourceBytes + len(facts), db: old.db}
	// The facts are already applied in memory; if journaling refuses the
	// mutation the caller sees the error and no new version is published,
	// so a restart converges back to the last durable state.
	if err := r.publishLocked(e, OpExtend, facts); err != nil {
		return nil, err
	}
	return e, nil
}

// Put sniffs the payload: a JSON object is a specification document,
// anything else is program source.
func (r *Registry) Put(name string, raw []byte) (*Entry, error) {
	if looksLikeJSON(raw) {
		return r.PutSpec(name, raw)
	}
	return r.PutProgram(name, raw)
}

func looksLikeJSON(raw []byte) bool {
	for _, b := range raw {
		switch b {
		case ' ', '\t', '\r', '\n':
			continue
		case '{':
			return true
		default:
			return false
		}
	}
	return false
}

// publish installs e in a fresh copy-on-write snapshot under the writer
// lock, assigning the next version for its name and journaling the
// mutation through the observer first (write-ahead order).
func (r *Registry) publish(e *Entry, op Op, payload []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.publishLocked(e, op, payload)
}

func (r *Registry) publishLocked(e *Entry, op Op, payload []byte) error {
	v := r.versions[e.Name] + 1
	if r.obs != nil {
		if err := r.obs(Mutation{Op: op, Name: e.Name, Version: v, Payload: payload}); err != nil {
			return fmt.Errorf("registry: journal %s %q: %w", op, e.Name, err)
		}
	}
	r.versions[e.Name] = v
	e.Version = v
	r.installLocked(e)
	return nil
}

// installLocked swaps in a snapshot carrying e; callers hold r.mu and have
// already assigned e.Version.
func (r *Registry) installLocked(e *Entry) {
	old := r.snap.Load()
	next := &snapshot{entries: make(map[string]*Entry, len(old.entries)+1)}
	for k, v := range old.entries {
		next.entries[k] = v
	}
	next.entries[e.Name] = e
	r.snap.Store(next)
	if r.notify != nil {
		r.notify(e.Name, e.Version)
	}
}

// Remove deletes name from the catalog, reporting whether it was present.
// The version counter is retained so a later re-add does not reuse
// versions. A journaling failure keeps the entry and surfaces the error.
func (r *Registry) Remove(name string) (bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.snap.Load().entries[name]; !ok {
		return false, nil
	}
	if r.obs != nil {
		if err := r.obs(Mutation{Op: OpDelete, Name: name}); err != nil {
			return false, fmt.Errorf("registry: journal delete %q: %w", name, err)
		}
	}
	r.removeLocked(name)
	return true, nil
}

// DropLocal removes name from the in-memory catalog without consulting
// the observer: no journal record is written and absence is not an error.
// Replication re-bootstrap uses it to retire entries a newer primary
// snapshot no longer carries — the primary's journal is the authority
// there, so journaling the drop locally would fork history.
func (r *Registry) DropLocal(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.snap.Load().entries[name]; !ok {
		return false
	}
	r.removeLocked(name)
	return true
}

func (r *Registry) removeLocked(name string) {
	old := r.snap.Load()
	next := &snapshot{entries: make(map[string]*Entry, len(old.entries))}
	for k, v := range old.entries {
		if k != name {
			next.entries[k] = v
		}
	}
	r.snap.Store(next)
	if r.notify != nil {
		r.notify(name, 0)
	}
}

// Capture runs f with a point-in-time view of the catalog while holding
// the writer lock: the entries sorted by name and a copy of the version
// counters (including counters of deleted names). No mutation — and, in
// particular, no observer call — can interleave with f, which is what lets
// a checkpointer pair the captured state with an exact log position. Keep
// f short; it blocks all writers.
func (r *Registry) Capture(f func(entries []*Entry, versions map[string]uint64)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := r.snap.Load()
	entries := make([]*Entry, 0, len(snap.entries))
	for _, e := range snap.entries {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	versions := make(map[string]uint64, len(r.versions))
	for k, v := range r.versions {
		versions[k] = v
	}
	f(entries, versions)
}

// SeedVersions raises the version counters to at least the given values.
// Recovery uses it to restore counters of names that were deleted before
// the checkpoint, so a re-created name still never repeats a version.
func (r *Registry) SeedVersions(versions map[string]uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range versions {
		if v > r.versions[k] {
			r.versions[k] = v
		}
	}
}

// RestoreProgram recompiles checkpointed program source and installs it at
// exactly the recorded version, bypassing the observer. The checkpointed
// text is the formatter's rendering, not the original upload, so the
// original upload size is restored explicitly. Recovery only.
func (r *Registry) RestoreProgram(name string, src []byte, sourceBytes int, version uint64) (*Entry, error) {
	e, err := r.buildProgram(name, src)
	if err != nil {
		return nil, err
	}
	e.SourceBytes = sourceBytes
	r.installAt(e, version)
	return e, nil
}

// RestoreSpecDoc installs an already-decoded specification document at
// exactly the recorded version, bypassing the observer. Recovery only.
func (r *Registry) RestoreSpecDoc(name string, doc *specio.Document, sourceBytes int, version uint64) (*Entry, error) {
	e, err := r.buildSpec(name, doc, sourceBytes)
	if err != nil {
		return nil, err
	}
	r.installAt(e, version)
	return e, nil
}

func (r *Registry) installAt(e *Entry, version uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e.Version = version
	if version > r.versions[e.Name] {
		r.versions[e.Name] = version
	}
	r.installLocked(e)
}

// ApplyAt replays one journaled mutation, forcing the recorded version and
// bypassing the observer. Replaying the journal in commit order into the
// checkpointed state reproduces the pre-crash catalog exactly.
func (r *Registry) ApplyAt(m Mutation) error {
	switch m.Op {
	case OpPut:
		var e *Entry
		var err error
		if looksLikeJSON(m.Payload) {
			var doc *specio.Document
			doc, err = specio.Read(strings.NewReader(string(m.Payload)))
			if err == nil {
				e, err = r.buildSpec(m.Name, doc, len(m.Payload))
			}
		} else {
			e, err = r.buildProgram(m.Name, m.Payload)
		}
		if err != nil {
			return err
		}
		r.installAt(e, m.Version)
		return nil
	case OpExtend:
		r.mu.Lock()
		defer r.mu.Unlock()
		old, ok := r.snap.Load().entries[m.Name]
		if !ok {
			return fmt.Errorf("%w: %q", ErrNotFound, m.Name)
		}
		if old.Kind != KindProgram {
			return fmt.Errorf("registry: extend replay against non-program %q", m.Name)
		}
		if err := old.db.Extend(string(m.Payload)); err != nil {
			return err
		}
		e := &Entry{Name: m.Name, Kind: KindProgram, SourceBytes: old.SourceBytes + len(m.Payload), db: old.db}
		e.Version = m.Version
		if m.Version > r.versions[m.Name] {
			r.versions[m.Name] = m.Version
		}
		r.installLocked(e)
		return nil
	case OpDelete:
		r.mu.Lock()
		defer r.mu.Unlock()
		if _, ok := r.snap.Load().entries[m.Name]; !ok {
			return fmt.Errorf("%w: %q", ErrNotFound, m.Name)
		}
		r.removeLocked(m.Name)
		return nil
	}
	return fmt.Errorf("registry: unknown mutation op %d", m.Op)
}

// LoadDir preloads every *.fdb (program) and *.json (spec document) file
// in dir, named after the file without its extension. It stops at the
// first failing file.
func (r *Registry) LoadDir(dir string) (int, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		return 0, err
	}
	sort.Strings(names)
	n := 0
	for _, path := range names {
		ext := filepath.Ext(path)
		if ext != ".fdb" && ext != ".json" {
			continue
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return n, err
		}
		name := strings.TrimSuffix(filepath.Base(path), ext)
		if ext == ".fdb" {
			_, err = r.PutProgram(name, raw)
		} else {
			_, err = r.PutSpec(name, raw)
		}
		if err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}
