package specio

import (
	"bytes"
	"testing"
)

// FuzzSpecioRead drives arbitrary bytes through the JSON document reader.
// Read promises that a document it returns always validates and loads, so
// any accepted input must survive Write+Read and Load without a panic or
// a new error. Seeds are honestly-exported documents plus some near-valid
// JSON so the fuzzer starts past the parser.
func FuzzSpecioRead(f *testing.F) {
	for _, src := range []string{meetingsSrc, listsSrc} {
		var buf bytes.Buffer
		if err := FromSpec(buildSpec(f, src)).Write(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(`{"format":"funcdb/spec/v1"}`))
	f.Add([]byte(`{"format":"funcdb/spec/v1","alphabet":["a"],"seed_depth":-1}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := doc.Write(&buf); err != nil {
			t.Fatalf("accepted document does not re-serialize: %v", err)
		}
		if _, err := Read(&buf); err != nil {
			t.Fatalf("re-serialized document does not re-read: %v", err)
		}
		if _, err := Load(doc); err != nil {
			t.Fatalf("accepted document does not load: %v", err)
		}
	})
}
