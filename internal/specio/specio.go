// Package specio serializes relational specifications.
//
// The paper stresses that its representations are explicit: "once it is
// computed, the original deductive rules may be forgotten". This package
// makes that operational. A graph specification (B, T) together with the
// equations R and the global facts is exported to a self-contained JSON
// document; Load rebuilds a standalone answerer from the document alone —
// no rules, no engine — that decides membership by the same DFA walk or
// congruence-closure test. Export to Graphviz DOT is provided for
// inspecting the successor automaton.
package specio

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"

	"funcdb/internal/congruence"
	"funcdb/internal/specgraph"
	"funcdb/internal/symbols"
	"funcdb/internal/term"
)

// Document is the serialized form of a relational specification. Terms are
// written as their symbol strings (innermost first); all names are surface
// names, so documents are stable across interning orders.
type Document struct {
	// Format identifies the document layout; currently "funcdb/spec/v1".
	Format string `json:"format"`
	// Temporal marks single-successor specifications.
	Temporal bool `json:"temporal"`
	// SeedDepth is Algorithm Q's seed depth (for provenance only).
	SeedDepth int `json:"seed_depth"`
	// Alphabet lists the successor symbols in transition order.
	Alphabet []string `json:"alphabet"`
	// Predicates describes every predicate appearing in slices or globals.
	Predicates []PredicateDoc `json:"predicates"`
	// Reps lists the representative terms in precedence order.
	Reps []TermDoc `json:"representatives"`
	// Edges lists every successor mapping.
	Edges []EdgeDoc `json:"edges"`
	// Slices holds the primary database B.
	Slices []SliceDoc `json:"slices"`
	// Globals holds the non-functional facts.
	Globals []FactDoc `json:"globals"`
	// Equations holds the relation R of the equational specification.
	Equations []EquationDoc `json:"equations"`
}

// PredicateDoc describes one predicate.
type PredicateDoc struct {
	Name       string `json:"name"`
	Arity      int    `json:"arity"` // non-functional arguments
	Functional bool   `json:"functional"`
}

// TermDoc is a ground functional term as its symbol string, innermost
// first; the empty slice is the functional constant 0.
type TermDoc []string

// EdgeDoc is one successor mapping succ_fn(from) = to, by representative
// index.
type EdgeDoc struct {
	From int    `json:"from"`
	Fn   string `json:"fn"`
	To   int    `json:"to"`
}

// FactDoc is a function-free atom.
type FactDoc struct {
	Pred string   `json:"pred"`
	Args []string `json:"args,omitempty"`
}

// SliceDoc is the slice of one representative.
type SliceDoc struct {
	Rep   int       `json:"rep"`
	Facts []FactDoc `json:"facts,omitempty"`
}

// EquationDoc is one ground equation of R.
type EquationDoc struct {
	Left  TermDoc `json:"left"`
	Right TermDoc `json:"right"`
}

// FromSpec builds a Document from a graph specification.
func FromSpec(sp *specgraph.Spec) *Document {
	tab := sp.Eng.Prep.Program.Tab
	doc := &Document{
		Format:    "funcdb/spec/v1",
		Temporal:  sp.Eng.Prep.Temporal,
		SeedDepth: sp.SeedDepth,
	}
	for _, f := range sp.Alphabet {
		doc.Alphabet = append(doc.Alphabet, tab.FuncName(f))
	}
	repIndex := make(map[term.Term]int, len(sp.Reps))
	termDoc := func(t term.Term) TermDoc {
		syms := sp.U.Symbols(t)
		out := make(TermDoc, len(syms))
		for i, f := range syms {
			out[i] = tab.FuncName(f)
		}
		return out
	}
	for i, t := range sp.Reps {
		repIndex[t] = i
		doc.Reps = append(doc.Reps, termDoc(t))
	}
	preds := make(map[symbols.PredID]bool)
	for _, t := range sp.Reps {
		for _, f := range sp.Alphabet {
			if to, ok := sp.Successor(t, f); ok {
				doc.Edges = append(doc.Edges, EdgeDoc{
					From: repIndex[t], Fn: tab.FuncName(f), To: repIndex[to],
				})
			}
		}
		slice := SliceDoc{Rep: repIndex[t]}
		for _, a := range sp.Slice(t) {
			p := sp.W.AtomPred(a)
			preds[p] = true
			fd := FactDoc{Pred: tab.PredName(p)}
			for _, c := range sp.W.TupleArgs(sp.W.AtomTuple(a)) {
				fd.Args = append(fd.Args, tab.ConstName(c))
			}
			slice.Facts = append(slice.Facts, fd)
		}
		doc.Slices = append(doc.Slices, slice)
	}
	for _, a := range sp.Eng.Global().All() {
		p := sp.W.AtomPred(a)
		if !sp.Eng.Prep.OriginalPreds[p] {
			continue
		}
		preds[p] = true
		fd := FactDoc{Pred: tab.PredName(p)}
		for _, c := range sp.W.TupleArgs(sp.W.AtomTuple(a)) {
			fd.Args = append(fd.Args, tab.ConstName(c))
		}
		doc.Globals = append(doc.Globals, fd)
	}
	sort.Slice(doc.Globals, func(i, j int) bool {
		a, b := doc.Globals[i], doc.Globals[j]
		if a.Pred != b.Pred {
			return a.Pred < b.Pred
		}
		return strings.Join(a.Args, ",") < strings.Join(b.Args, ",")
	})
	for _, m := range sp.Merges {
		doc.Equations = append(doc.Equations, EquationDoc{
			Left:  termDoc(m.Rep),
			Right: termDoc(m.Potential),
		})
	}
	var predIDs []symbols.PredID
	for p := range preds {
		predIDs = append(predIDs, p)
	}
	sort.Slice(predIDs, func(i, j int) bool { return predIDs[i] < predIDs[j] })
	for _, p := range predIDs {
		info := tab.PredInfo(p)
		doc.Predicates = append(doc.Predicates, PredicateDoc{
			Name: info.Name, Arity: info.Arity, Functional: info.Functional,
		})
	}
	return doc
}

// Write serializes the document as indented JSON.
func (d *Document) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// MaxDocumentBytes bounds the size of a document accepted by Read. It
// exists so that a hostile or corrupted upload cannot exhaust memory; the
// default is far above any specification this engine produces.
var MaxDocumentBytes int64 = 64 << 20

// Read parses and validates a document. Malformed or hostile documents —
// oversized input, duplicate representatives or slices, out-of-range
// successor targets, symbols outside the alphabet — are rejected with an
// explicit error; a document returned by Read always loads.
func Read(r io.Reader) (*Document, error) {
	lr := &io.LimitedReader{R: r, N: MaxDocumentBytes + 1}
	var d Document
	if err := json.NewDecoder(lr).Decode(&d); err != nil {
		if lr.N <= 0 {
			return nil, fmt.Errorf("specio: document exceeds %d bytes", MaxDocumentBytes)
		}
		return nil, fmt.Errorf("specio: %w", err)
	}
	if lr.N <= 0 {
		return nil, fmt.Errorf("specio: document exceeds %d bytes", MaxDocumentBytes)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Validate checks the document's structural invariants: the format tag,
// index ranges, alphabet closure, and the absence of duplicates that would
// make the successor automaton ambiguous. Load calls it, so hand-built
// documents get the same scrutiny as ones arriving through Read.
func (d *Document) Validate() error {
	if d.Format != "funcdb/spec/v1" {
		return fmt.Errorf("specio: unsupported format %q", d.Format)
	}
	if d.SeedDepth < 0 {
		return fmt.Errorf("specio: negative seed depth %d", d.SeedDepth)
	}
	alpha := make(map[string]bool, len(d.Alphabet))
	for _, f := range d.Alphabet {
		if f == "" {
			return fmt.Errorf("specio: empty function symbol in alphabet")
		}
		if alpha[f] {
			return fmt.Errorf("specio: duplicate function symbol %q in alphabet", f)
		}
		alpha[f] = true
	}
	inAlphabet := func(td TermDoc, what string) error {
		for _, f := range td {
			if !alpha[f] {
				return fmt.Errorf("specio: %s uses function symbol %q outside the alphabet", what, f)
			}
		}
		return nil
	}
	seenRep := make(map[string]bool, len(d.Reps))
	hasRoot := false
	for i, td := range d.Reps {
		if err := inAlphabet(td, "representative"); err != nil {
			return err
		}
		key := strings.Join(td, "\x00")
		if seenRep[key] {
			return fmt.Errorf("specio: duplicate representative at index %d", i)
		}
		seenRep[key] = true
		if len(td) == 0 {
			hasRoot = true
		}
	}
	if len(d.Reps) > 0 && !hasRoot {
		return fmt.Errorf("specio: document has no root representative 0")
	}
	seenEdge := make(map[EdgeDoc]bool, len(d.Edges))
	for _, e := range d.Edges {
		if e.From < 0 || e.From >= len(d.Reps) || e.To < 0 || e.To >= len(d.Reps) {
			return fmt.Errorf("specio: edge %d -%s-> %d out of range (have %d representatives)",
				e.From, e.Fn, e.To, len(d.Reps))
		}
		if !alpha[e.Fn] {
			return fmt.Errorf("specio: edge over function symbol %q outside the alphabet", e.Fn)
		}
		key := EdgeDoc{From: e.From, Fn: e.Fn}
		if seenEdge[key] {
			return fmt.Errorf("specio: duplicate edge from %d over %q", e.From, e.Fn)
		}
		seenEdge[key] = true
	}
	seenSlice := make(map[int]bool, len(d.Slices))
	for _, sl := range d.Slices {
		if sl.Rep < 0 || sl.Rep >= len(d.Reps) {
			return fmt.Errorf("specio: slice for representative %d out of range (have %d representatives)",
				sl.Rep, len(d.Reps))
		}
		if seenSlice[sl.Rep] {
			return fmt.Errorf("specio: duplicate slice for representative %d", sl.Rep)
		}
		seenSlice[sl.Rep] = true
		for _, fd := range sl.Facts {
			if fd.Pred == "" {
				return fmt.Errorf("specio: fact with empty predicate in slice %d", sl.Rep)
			}
		}
	}
	for _, fd := range d.Globals {
		if fd.Pred == "" {
			return fmt.Errorf("specio: global fact with empty predicate")
		}
	}
	for _, eq := range d.Equations {
		if err := inAlphabet(eq.Left, "equation"); err != nil {
			return err
		}
		if err := inAlphabet(eq.Right, "equation"); err != nil {
			return err
		}
	}
	for _, p := range d.Predicates {
		if p.Name == "" || p.Arity < 0 {
			return fmt.Errorf("specio: invalid predicate declaration %q/%d", p.Name, p.Arity)
		}
	}
	return nil
}

// Standalone answers membership queries from a loaded document alone: the
// original rules are gone, exactly as section 3 promises.
//
// A Standalone is safe for concurrent use: query methods that intern terms
// into its private universe (Term, ParseGroundQuery, ParseTermString, Has,
// HasViaCongruence, Representative) serialize through an internal mutex.
// Callers that reach the universe directly via Universe() must provide
// their own synchronization.
type Standalone struct {
	mu       sync.Mutex
	doc      *Document
	tab      *symbols.Table
	u        *term.Universe
	alphabet []symbols.FuncID
	reps     []term.Term
	repIdx   map[term.Term]int
	succ     map[edge]int
	slices   []map[string]bool // fact key sets per rep
	globals  map[string]bool
	eq       *congruence.EqSpec
	// candidates per fact key, for congruence-closure answering.
	candidates map[string][]term.Term
}

type edge struct {
	from int
	fn   symbols.FuncID
}

func factKey(pred string, args []string) string {
	return pred + "(" + strings.Join(args, ",") + ")"
}

// Load rebuilds a standalone answerer from a document.
func Load(doc *Document) (*Standalone, error) {
	if err := doc.Validate(); err != nil {
		return nil, err
	}
	s := &Standalone{
		doc:        doc,
		tab:        symbols.NewTable(),
		u:          term.NewUniverse(),
		repIdx:     make(map[term.Term]int),
		succ:       make(map[edge]int),
		globals:    make(map[string]bool),
		candidates: make(map[string][]term.Term),
	}
	for _, name := range doc.Alphabet {
		s.alphabet = append(s.alphabet, s.tab.Func(name, 0))
	}
	for i, td := range doc.Reps {
		t, err := s.term(td)
		if err != nil {
			return nil, err
		}
		s.reps = append(s.reps, t)
		s.repIdx[t] = i
		s.slices = append(s.slices, make(map[string]bool))
	}
	for _, e := range doc.Edges {
		f, ok := s.tab.LookupFunc(e.Fn, 0)
		if !ok {
			return nil, fmt.Errorf("specio: edge over unknown symbol %q", e.Fn)
		}
		if e.From < 0 || e.From >= len(s.reps) || e.To < 0 || e.To >= len(s.reps) {
			return nil, fmt.Errorf("specio: edge index out of range")
		}
		s.succ[edge{e.From, f}] = e.To
	}
	for _, sl := range doc.Slices {
		if sl.Rep < 0 || sl.Rep >= len(s.reps) {
			return nil, fmt.Errorf("specio: slice index out of range")
		}
		for _, fd := range sl.Facts {
			key := factKey(fd.Pred, fd.Args)
			s.slices[sl.Rep][key] = true
			s.candidates[key] = append(s.candidates[key], s.reps[sl.Rep])
		}
	}
	for _, fd := range doc.Globals {
		s.globals[factKey(fd.Pred, fd.Args)] = true
	}
	var pairs [][2]term.Term
	for _, eq := range doc.Equations {
		l, err := s.term(eq.Left)
		if err != nil {
			return nil, err
		}
		r, err := s.term(eq.Right)
		if err != nil {
			return nil, err
		}
		pairs = append(pairs, [2]term.Term{l, r})
	}
	s.eq = congruence.NewEqSpec(s.u, pairs)
	return s, nil
}

func (s *Standalone) term(td TermDoc) (term.Term, error) {
	t := term.Zero
	for _, name := range td {
		f, ok := s.tab.LookupFunc(name, 0)
		if !ok {
			return term.None, fmt.Errorf("specio: unknown function symbol %q", name)
		}
		t = s.u.Apply(f, t)
	}
	return t, nil
}

// Universe returns the standalone answerer's term universe.
func (s *Standalone) Universe() *term.Universe { return s.u }

// Tab returns the standalone answerer's symbol table (function symbols
// only; predicates and constants live as strings).
func (s *Standalone) Tab() *symbols.Table { return s.tab }

// Term interns the term with the given symbol names, innermost first.
func (s *Standalone) Term(names ...string) (term.Term, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.term(TermDoc(names))
}

// Representative runs the DFA on t and returns the representative index.
func (s *Standalone) Representative(t term.Term) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.representativeLocked(t)
}

func (s *Standalone) representativeLocked(t term.Term) (int, error) {
	cur, ok := s.repIdx[term.Zero]
	if !ok {
		return 0, fmt.Errorf("specio: document has no root representative")
	}
	for _, f := range s.u.Symbols(t) {
		next, ok := s.succ[edge{cur, f}]
		if !ok {
			return 0, fmt.Errorf("specio: missing edge")
		}
		cur = next
	}
	return cur, nil
}

// Has decides pred(t, args) by the DFA walk.
func (s *Standalone) Has(pred string, t term.Term, args ...string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep, err := s.representativeLocked(t)
	if err != nil {
		return false, err
	}
	return s.slices[rep][factKey(pred, args)], nil
}

// HasViaCongruence decides pred(t, args) by the congruence-closure test
// against the equations R.
func (s *Standalone) HasViaCongruence(pred string, t term.Term, args ...string) bool {
	// The solver reads the universe while extending its subterm graph, so
	// interning elsewhere must be excluded for the duration.
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eq.CongruentToAny(t, s.candidates[factKey(pred, args)])
}

// HasData decides a non-functional fact.
func (s *Standalone) HasData(pred string, args ...string) bool {
	return s.globals[factKey(pred, args)]
}

// NumReps returns the number of representatives.
func (s *Standalone) NumReps() int { return len(s.reps) }

// ParseGroundQuery parses the textual ground-query syntax shared by fdbq
// and the fdbd daemon: Pred(TERM[, args...]), optionally ending in ".".
// TERM is parsed by ParseTermString.
func (s *Standalone) ParseGroundQuery(q string) (pred string, tm term.Term, args []string, err error) {
	q = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(q), "."))
	open := strings.IndexByte(q, '(')
	if open <= 0 || !strings.HasSuffix(q, ")") {
		return "", term.None, nil, fmt.Errorf("specio: want Pred(TERM, args...)")
	}
	pred = q[:open]
	inner := q[open+1 : len(q)-1]
	parts := strings.Split(inner, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	if len(parts) == 0 || parts[0] == "" {
		return "", term.None, nil, fmt.Errorf("specio: missing term")
	}
	tm, err = s.ParseTermString(parts[0])
	if err != nil {
		return "", term.None, nil, err
	}
	return pred, tm, parts[1:], nil
}

// ParseTermString parses 0, a non-negative decimal number (a succ-chain
// over 0), or dot-separated function-symbol names innermost-first.
func (s *Standalone) ParseTermString(str string) (term.Term, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if str == "0" {
		return term.Zero, nil
	}
	if n, err := strconv.Atoi(str); err == nil {
		if n < 0 {
			return term.None, fmt.Errorf("specio: negative term %d", n)
		}
		succ, ok := s.tab.LookupFunc(term.SuccName, 0)
		if !ok {
			return term.None, fmt.Errorf("specio: the specification has no successor symbol; use dotted symbols")
		}
		return s.u.Number(n, succ), nil
	}
	return s.term(TermDoc(strings.Split(str, ".")))
}

// DOT renders the successor automaton in Graphviz DOT form. Nodes are
// labelled with the representative term and its slice size.
func (d *Document) DOT() string {
	var b strings.Builder
	b.WriteString("digraph spec {\n  rankdir=LR;\n  node [shape=circle];\n")
	label := func(td TermDoc) string {
		if len(td) == 0 {
			return "0"
		}
		return strings.Join(td, ".")
	}
	sliceSize := make(map[int]int)
	for _, sl := range d.Slices {
		sliceSize[sl.Rep] = len(sl.Facts)
	}
	for i, td := range d.Reps {
		fmt.Fprintf(&b, "  n%d [label=\"%s\\n%d tuples\"];\n", i, label(td), sliceSize[i])
	}
	for _, e := range d.Edges {
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"%s\"];\n", e.From, e.To, e.Fn)
	}
	b.WriteString("}\n")
	return b.String()
}
