package specio

import (
	"bytes"
	"strings"
	"testing"

	"funcdb/internal/engine"
	"funcdb/internal/facts"
	"funcdb/internal/parser"
	"funcdb/internal/rewrite"
	"funcdb/internal/specgraph"
	"funcdb/internal/symbols"
	"funcdb/internal/term"
)

func buildSpec(t *testing.T, src string) *specgraph.Spec {
	t.Helper()
	prog := parser.MustParse(src).Program
	prep, err := rewrite.Prepare(prog)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	eng, err := engine.New(prep, term.NewUniverse(), facts.NewWorld(), engine.Options{})
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	sp, err := specgraph.Build(eng, specgraph.Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return sp
}

const meetingsSrc = `
Meets(0, tony).
Next(tony, jan).
Next(jan, tony).
Meets(T, X), Next(X, Y) -> Meets(T+1, Y).
`

const listsSrc = `
P(a).
P(b).
P(X) -> Member(ext(0, X), X).
P(Y), Member(S, X) -> Member(ext(S, Y), Y).
P(Y), Member(S, X) -> Member(ext(S, Y), X).
`

func roundTrip(t *testing.T, src string) (*specgraph.Spec, *Standalone) {
	t.Helper()
	sp := buildSpec(t, src)
	doc := FromSpec(sp)
	var buf bytes.Buffer
	if err := doc.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	doc2, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	st, err := Load(doc2)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return sp, st
}

func TestRoundTripMeetings(t *testing.T) {
	sp, st := roundTrip(t, meetingsSrc)
	if st.NumReps() != len(sp.Reps) {
		t.Fatalf("reps = %d, want %d", st.NumReps(), len(sp.Reps))
	}
	succ, ok := st.Tab().LookupFunc("succ", 0)
	if !ok {
		t.Fatalf("standalone table lost the successor symbol")
	}
	day := func(n int) term.Term { return st.Universe().Number(n, succ) }
	for n := 0; n <= 9; n++ {
		wantTony := n%2 == 0
		got, err := st.Has("Meets", day(n), "tony")
		if err != nil {
			t.Fatalf("Has: %v", err)
		}
		if got != wantTony {
			t.Errorf("standalone Meets(%d, tony) = %v, want %v", n, got, wantTony)
		}
		if gotEq := st.HasViaCongruence("Meets", day(n), "tony"); gotEq != wantTony {
			t.Errorf("congruence Meets(%d, tony) = %v, want %v", n, gotEq, wantTony)
		}
	}
	if !st.HasData("Next", "tony", "jan") {
		t.Errorf("global Next(tony, jan) lost in round trip")
	}
	if st.HasData("Next", "jan", "bob") {
		t.Errorf("phantom global fact")
	}
}

// TestStandaloneMatchesSpec checks that the loaded document answers every
// membership question identically to the original specification — with the
// rules genuinely absent on the standalone side.
func TestStandaloneMatchesSpec(t *testing.T) {
	sp, st := roundTrip(t, listsSrc)
	tab := sp.Eng.Prep.Program.Tab
	member, _ := tab.LookupPred("Member", 1, true)
	aC, _ := tab.LookupConst("a")
	bC, _ := tab.LookupConst("b")

	extA2, _ := st.Tab().LookupFunc("ext'a", 0)
	extB2, _ := st.Tab().LookupFunc("ext'b", 0)
	extA1, _ := tab.LookupFunc("ext'a", 0)
	extB1, _ := tab.LookupFunc("ext'b", 0)

	// Enumerate all terms to depth 4 in both universes in parallel and
	// compare every membership answer.
	var walk func(orig, stand term.Term, depth int)
	walk = func(orig, stand term.Term, depth int) {
		for _, el := range []struct {
			c    symbols.ConstID
			name string
		}{{aC, "a"}, {bC, "b"}} {
			want, err := sp.Has(member, orig, []symbols.ConstID{el.c})
			if err != nil {
				t.Fatalf("spec Has: %v", err)
			}
			got, err := st.Has("Member", stand, el.name)
			if err != nil {
				t.Fatalf("standalone Has: %v", err)
			}
			if got != want {
				t.Errorf("mismatch for Member(%s, %s): spec %v, standalone %v",
					sp.U.CompactString(orig, tab), el.name, want, got)
			}
			if gotEq := st.HasViaCongruence("Member", stand, el.name); gotEq != want {
				t.Errorf("congruence mismatch for Member(%s, %s)",
					sp.U.CompactString(orig, tab), el.name)
			}
		}
		if depth == 4 {
			return
		}
		walk(sp.U.Apply(extA1, orig), st.Universe().Apply(extA2, stand), depth+1)
		walk(sp.U.Apply(extB1, orig), st.Universe().Apply(extB2, stand), depth+1)
	}
	walk(term.Zero, term.Zero, 0)
}

func TestReadRejectsBadFormat(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"format":"other/v9"}`)); err == nil {
		t.Fatalf("unknown format accepted")
	}
	if _, err := Read(strings.NewReader(`not json`)); err == nil {
		t.Fatalf("non-JSON accepted")
	}
}

func TestLoadRejectsCorruptDocuments(t *testing.T) {
	sp := buildSpec(t, meetingsSrc)
	base := FromSpec(sp)

	bad1 := *base
	bad1.Edges = append([]EdgeDoc(nil), base.Edges...)
	bad1.Edges[0].To = 99
	if _, err := Load(&bad1); err == nil {
		t.Errorf("out-of-range edge accepted")
	}

	bad2 := *base
	bad2.Edges = append([]EdgeDoc(nil), base.Edges...)
	bad2.Edges[0].Fn = "nosuch"
	if _, err := Load(&bad2); err == nil {
		t.Errorf("edge over unknown symbol accepted")
	}

	bad3 := *base
	bad3.Slices = append([]SliceDoc(nil), base.Slices...)
	bad3.Slices[0].Rep = -1
	if _, err := Load(&bad3); err == nil {
		t.Errorf("out-of-range slice accepted")
	}
}

func TestDOT(t *testing.T) {
	sp := buildSpec(t, meetingsSrc)
	doc := FromSpec(sp)
	dot := doc.DOT()
	for _, want := range []string{"digraph spec", "n0 -> n1", "n1 -> n0", `label="succ"`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestDocumentCarriesEquations(t *testing.T) {
	sp := buildSpec(t, `
Even(0).
Even(T) -> Even(T+2).
`)
	doc := FromSpec(sp)
	if len(doc.Equations) != 1 {
		t.Fatalf("equations = %d, want 1", len(doc.Equations))
	}
	eq := doc.Equations[0]
	if len(eq.Left) != 0 || len(eq.Right) != 2 {
		t.Errorf("equation = %v ~ %v, want 0 ~ succ.succ", eq.Left, eq.Right)
	}
	if !doc.Temporal {
		t.Errorf("temporal flag lost")
	}
}
