package specio

import (
	"bytes"
	"strings"
	"testing"

	"funcdb/internal/engine"
	"funcdb/internal/facts"
	"funcdb/internal/parser"
	"funcdb/internal/rewrite"
	"funcdb/internal/specgraph"
	"funcdb/internal/symbols"
	"funcdb/internal/term"
)

func buildSpec(t testing.TB, src string) *specgraph.Spec {
	t.Helper()
	prog := parser.MustParse(src).Program
	prep, err := rewrite.Prepare(prog)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	eng, err := engine.New(prep, term.NewUniverse(), facts.NewWorld(), engine.Options{})
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	sp, err := specgraph.Build(eng, specgraph.Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return sp
}

const meetingsSrc = `
Meets(0, tony).
Next(tony, jan).
Next(jan, tony).
Meets(T, X), Next(X, Y) -> Meets(T+1, Y).
`

const listsSrc = `
P(a).
P(b).
P(X) -> Member(ext(0, X), X).
P(Y), Member(S, X) -> Member(ext(S, Y), Y).
P(Y), Member(S, X) -> Member(ext(S, Y), X).
`

func roundTrip(t *testing.T, src string) (*specgraph.Spec, *Standalone) {
	t.Helper()
	sp := buildSpec(t, src)
	doc := FromSpec(sp)
	var buf bytes.Buffer
	if err := doc.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	doc2, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	st, err := Load(doc2)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return sp, st
}

func TestRoundTripMeetings(t *testing.T) {
	sp, st := roundTrip(t, meetingsSrc)
	if st.NumReps() != len(sp.Reps) {
		t.Fatalf("reps = %d, want %d", st.NumReps(), len(sp.Reps))
	}
	succ, ok := st.Tab().LookupFunc("succ", 0)
	if !ok {
		t.Fatalf("standalone table lost the successor symbol")
	}
	day := func(n int) term.Term { return st.Universe().Number(n, succ) }
	for n := 0; n <= 9; n++ {
		wantTony := n%2 == 0
		got, err := st.Has("Meets", day(n), "tony")
		if err != nil {
			t.Fatalf("Has: %v", err)
		}
		if got != wantTony {
			t.Errorf("standalone Meets(%d, tony) = %v, want %v", n, got, wantTony)
		}
		if gotEq := st.HasViaCongruence("Meets", day(n), "tony"); gotEq != wantTony {
			t.Errorf("congruence Meets(%d, tony) = %v, want %v", n, gotEq, wantTony)
		}
	}
	if !st.HasData("Next", "tony", "jan") {
		t.Errorf("global Next(tony, jan) lost in round trip")
	}
	if st.HasData("Next", "jan", "bob") {
		t.Errorf("phantom global fact")
	}
}

// TestStandaloneMatchesSpec checks that the loaded document answers every
// membership question identically to the original specification — with the
// rules genuinely absent on the standalone side.
func TestStandaloneMatchesSpec(t *testing.T) {
	sp, st := roundTrip(t, listsSrc)
	tab := sp.Eng.Prep.Program.Tab
	member, _ := tab.LookupPred("Member", 1, true)
	aC, _ := tab.LookupConst("a")
	bC, _ := tab.LookupConst("b")

	extA2, _ := st.Tab().LookupFunc("ext'a", 0)
	extB2, _ := st.Tab().LookupFunc("ext'b", 0)
	extA1, _ := tab.LookupFunc("ext'a", 0)
	extB1, _ := tab.LookupFunc("ext'b", 0)

	// Enumerate all terms to depth 4 in both universes in parallel and
	// compare every membership answer.
	var walk func(orig, stand term.Term, depth int)
	walk = func(orig, stand term.Term, depth int) {
		for _, el := range []struct {
			c    symbols.ConstID
			name string
		}{{aC, "a"}, {bC, "b"}} {
			want, err := sp.Has(member, orig, []symbols.ConstID{el.c})
			if err != nil {
				t.Fatalf("spec Has: %v", err)
			}
			got, err := st.Has("Member", stand, el.name)
			if err != nil {
				t.Fatalf("standalone Has: %v", err)
			}
			if got != want {
				t.Errorf("mismatch for Member(%s, %s): spec %v, standalone %v",
					sp.U.CompactString(orig, tab), el.name, want, got)
			}
			if gotEq := st.HasViaCongruence("Member", stand, el.name); gotEq != want {
				t.Errorf("congruence mismatch for Member(%s, %s)",
					sp.U.CompactString(orig, tab), el.name)
			}
		}
		if depth == 4 {
			return
		}
		walk(sp.U.Apply(extA1, orig), st.Universe().Apply(extA2, stand), depth+1)
		walk(sp.U.Apply(extB1, orig), st.Universe().Apply(extB2, stand), depth+1)
	}
	walk(term.Zero, term.Zero, 0)
}

func TestReadRejectsBadFormat(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"format":"other/v9"}`)); err == nil {
		t.Fatalf("unknown format accepted")
	}
	if _, err := Read(strings.NewReader(`not json`)); err == nil {
		t.Fatalf("non-JSON accepted")
	}
}

func TestLoadRejectsCorruptDocuments(t *testing.T) {
	sp := buildSpec(t, meetingsSrc)
	base := FromSpec(sp)

	bad1 := *base
	bad1.Edges = append([]EdgeDoc(nil), base.Edges...)
	bad1.Edges[0].To = 99
	if _, err := Load(&bad1); err == nil {
		t.Errorf("out-of-range edge accepted")
	}

	bad2 := *base
	bad2.Edges = append([]EdgeDoc(nil), base.Edges...)
	bad2.Edges[0].Fn = "nosuch"
	if _, err := Load(&bad2); err == nil {
		t.Errorf("edge over unknown symbol accepted")
	}

	bad3 := *base
	bad3.Slices = append([]SliceDoc(nil), base.Slices...)
	bad3.Slices[0].Rep = -1
	if _, err := Load(&bad3); err == nil {
		t.Errorf("out-of-range slice accepted")
	}
}

func TestDOT(t *testing.T) {
	sp := buildSpec(t, meetingsSrc)
	doc := FromSpec(sp)
	dot := doc.DOT()
	for _, want := range []string{"digraph spec", "n0 -> n1", "n1 -> n0", `label="succ"`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestDocumentCarriesEquations(t *testing.T) {
	sp := buildSpec(t, `
Even(0).
Even(T) -> Even(T+2).
`)
	doc := FromSpec(sp)
	if len(doc.Equations) != 1 {
		t.Fatalf("equations = %d, want 1", len(doc.Equations))
	}
	eq := doc.Equations[0]
	if len(eq.Left) != 0 || len(eq.Right) != 2 {
		t.Errorf("equation = %v ~ %v, want 0 ~ succ.succ", eq.Left, eq.Right)
	}
	if !doc.Temporal {
		t.Errorf("temporal flag lost")
	}
}

// TestReadRejectsMalformed feeds Read hostile or corrupted documents and
// checks each is rejected with an explicit error, never a panic.
func TestReadRejectsMalformed(t *testing.T) {
	// A minimal valid document to mutate: one alphabet symbol, two reps
	// (0 and f), one edge, one slice.
	valid := func() *Document {
		return &Document{
			Format:   "funcdb/spec/v1",
			Alphabet: []string{"f"},
			Reps:     []TermDoc{{}, {"f"}},
			Edges:    []EdgeDoc{{From: 0, Fn: "f", To: 1}, {From: 1, Fn: "f", To: 1}},
			Slices:   []SliceDoc{{Rep: 0, Facts: []FactDoc{{Pred: "P"}}}},
			Predicates: []PredicateDoc{
				{Name: "P", Arity: 0, Functional: true},
			},
		}
	}
	cases := []struct {
		name    string
		mutate  func(*Document)
		wantErr string
	}{
		{"bad format", func(d *Document) { d.Format = "funcdb/spec/v9" }, "unsupported format"},
		{"negative seed depth", func(d *Document) { d.SeedDepth = -1 }, "negative seed depth"},
		{"duplicate alphabet symbol", func(d *Document) { d.Alphabet = []string{"f", "f"} }, "duplicate function symbol"},
		{"empty alphabet symbol", func(d *Document) { d.Alphabet = []string{""} }, "empty function symbol"},
		{"duplicate representative", func(d *Document) { d.Reps = append(d.Reps, TermDoc{"f"}) }, "duplicate representative"},
		{"rep outside alphabet", func(d *Document) { d.Reps[1] = TermDoc{"g"} }, "outside the alphabet"},
		{"no root representative", func(d *Document) { d.Reps = []TermDoc{{"f"}} }, "no root representative"},
		{"edge from out of range", func(d *Document) { d.Edges[0].From = 7 }, "out of range"},
		{"edge to out of range", func(d *Document) { d.Edges[0].To = -2 }, "out of range"},
		{"edge outside alphabet", func(d *Document) { d.Edges[0].Fn = "g" }, "outside the alphabet"},
		{"duplicate edge", func(d *Document) { d.Edges = append(d.Edges, EdgeDoc{From: 0, Fn: "f", To: 0}) }, "duplicate edge"},
		{"slice out of range", func(d *Document) { d.Slices[0].Rep = 2 }, "out of range"},
		{"duplicate slice", func(d *Document) { d.Slices = append(d.Slices, SliceDoc{Rep: 0}) }, "duplicate slice"},
		{"empty slice predicate", func(d *Document) { d.Slices[0].Facts[0].Pred = "" }, "empty predicate"},
		{"empty global predicate", func(d *Document) { d.Globals = []FactDoc{{Pred: ""}} }, "empty predicate"},
		{"equation outside alphabet", func(d *Document) {
			d.Equations = []EquationDoc{{Left: TermDoc{"g"}, Right: TermDoc{}}}
		}, "outside the alphabet"},
		{"invalid predicate decl", func(d *Document) { d.Predicates[0].Arity = -1 }, "invalid predicate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := valid()
			tc.mutate(d)
			var buf bytes.Buffer
			if err := d.Write(&buf); err != nil {
				t.Fatalf("Write: %v", err)
			}
			if _, err := Read(&buf); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Read error = %v, want substring %q", err, tc.wantErr)
			}
			// Load must reject the same document.
			if _, err := Load(d); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Load error = %v, want substring %q", err, tc.wantErr)
			}
		})
	}

	t.Run("valid document survives", func(t *testing.T) {
		d := valid()
		var buf bytes.Buffer
		if err := d.Write(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		if _, err := Load(got); err != nil {
			t.Fatalf("Load: %v", err)
		}
	})

	t.Run("not json", func(t *testing.T) {
		if _, err := Read(strings.NewReader("Meets(0, tony).")); err == nil {
			t.Fatal("Read accepted non-JSON input")
		}
	})

	t.Run("oversized input", func(t *testing.T) {
		old := MaxDocumentBytes
		MaxDocumentBytes = 128
		defer func() { MaxDocumentBytes = old }()
		big := `{"format":"funcdb/spec/v1","alphabet":["` + strings.Repeat("x", 200) + `"]}`
		if _, err := Read(strings.NewReader(big)); err == nil || !strings.Contains(err.Error(), "exceeds") {
			t.Fatalf("Read error = %v, want size rejection", err)
		}
	})
}

// TestParseGroundQuery covers the textual query syntax shared with fdbd.
func TestParseGroundQuery(t *testing.T) {
	sp := buildSpec(t, listsSrc)
	st, err := Load(FromSpec(sp))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	pred, tm, args, err := st.ParseGroundQuery("Member(ext'a.ext'b, a).")
	if err != nil {
		t.Fatalf("ParseGroundQuery: %v", err)
	}
	if pred != "Member" || len(args) != 1 || args[0] != "a" {
		t.Fatalf("got pred=%q args=%v", pred, args)
	}
	want, err := st.Term("ext'a", "ext'b")
	if err != nil {
		t.Fatal(err)
	}
	if tm != want {
		t.Fatalf("term mismatch: %v vs %v", tm, want)
	}
	for _, bad := range []string{"", "nope", "P(", "P()", "(x)"} {
		if _, _, _, err := st.ParseGroundQuery(bad); err == nil {
			t.Errorf("ParseGroundQuery(%q) accepted", bad)
		}
	}
}
