package rewrite

import (
	"fmt"
	"sort"
	"strings"

	"funcdb/internal/ast"
	"funcdb/internal/symbols"
)

// EliminateMixed removes mixed (k-ary) function symbols from a
// domain-independent program, following section 2.4: for every mixed term
// g(v, z̄) and every vector ā of constants from the active domain that
// agrees with the constants among z̄, a pure symbol g'ā is introduced and a
// rule instance is created in which g(v, z̄) is replaced by g'ā(v) and the
// variables among z̄ are replaced by the corresponding constants throughout
// the rule. The number of new rules is polynomial in the database size, and
// the transformation preserves normality of rules.
//
// The returned program shares p's symbol table; derived symbols are named
// g'a'b and marked Derived.
func EliminateMixed(p *ast.Program) (*ast.Program, error) {
	out := &ast.Program{Tab: p.Tab}
	domain := p.ConstsUsed()
	sort.Slice(domain, func(i, j int) bool { return domain[i] < domain[j] })
	if len(domain) == 0 {
		// A program can use mixed symbols only with constant arguments
		// somewhere in scope; with an empty active domain no mixed term can
		// ever be ground, so instantiation simply drops such rules.
		domain = nil
	}
	e := &eliminator{tab: p.Tab, domain: domain}

	for i := range p.Facts {
		f, err := e.groundAtom(p.Facts[i].Clone())
		if err != nil {
			return nil, fmt.Errorf("fact %s: %w", p.Facts[i].Format(p.Tab), err)
		}
		out.Facts = append(out.Facts, f)
	}
	for i := range p.Rules {
		insts, err := e.rule(p.Rules[i])
		if err != nil {
			return nil, fmt.Errorf("rule %s: %w", p.Rules[i].Format(p.Tab), err)
		}
		out.Rules = append(out.Rules, insts...)
	}
	return out, nil
}

type eliminator struct {
	tab    *symbols.Table
	domain []symbols.ConstID
}

// pureName builds the derived symbol name g'a'b for g applied to constants
// a, b. The apostrophe is a valid identifier character in the surface
// syntax, so eliminated programs can be printed and re-parsed.
func (e *eliminator) pureName(g symbols.FuncID, args []symbols.ConstID) symbols.FuncID {
	var b strings.Builder
	b.WriteString(e.tab.FuncName(g))
	for _, c := range args {
		b.WriteByte('\'')
		b.WriteString(e.tab.ConstName(c))
	}
	return e.tab.DerivedFunc(b.String())
}

// groundAtom rewrites the mixed applications of a ground atom in place.
func (e *eliminator) groundAtom(a ast.Atom) (ast.Atom, error) {
	if a.FT == nil {
		return a, nil
	}
	for i, app := range a.FT.Apps {
		if len(app.Args) == 0 {
			continue
		}
		consts := make([]symbols.ConstID, len(app.Args))
		for j, d := range app.Args {
			if d.IsVar() {
				return ast.Atom{}, fmt.Errorf("mixed application with variable argument in a ground atom")
			}
			consts[j] = d.Const
		}
		a.FT.Apps[i] = ast.FApp{Fn: e.pureName(app.Fn, consts)}
	}
	return a, nil
}

// mixedVars returns the data variables occurring inside mixed applications
// anywhere in the rule, in first-occurrence order.
func mixedVars(r *ast.Rule) []symbols.VarID {
	seen := make(map[symbols.VarID]bool)
	var order []symbols.VarID
	scan := func(a *ast.Atom) {
		if a.FT == nil {
			return
		}
		for _, app := range a.FT.Apps {
			if len(app.Args) == 0 {
				continue
			}
			for _, d := range app.Args {
				if d.IsVar() && !seen[d.Var] {
					seen[d.Var] = true
					order = append(order, d.Var)
				}
			}
		}
	}
	scan(&r.Head)
	for i := range r.Body {
		scan(&r.Body[i])
	}
	return order
}

// substituteDataVar replaces every occurrence of v in the rule by the
// constant c.
func substituteDataVar(r *ast.Rule, v symbols.VarID, c symbols.ConstID) {
	sub := func(d *ast.DTerm) {
		if d.IsVar() && d.Var == v {
			*d = ast.C(c)
		}
	}
	subAtom := func(a *ast.Atom) {
		for i := range a.Args {
			sub(&a.Args[i])
		}
		if a.FT != nil {
			for i := range a.FT.Apps {
				for j := range a.FT.Apps[i].Args {
					sub(&a.FT.Apps[i].Args[j])
				}
			}
		}
	}
	subAtom(&r.Head)
	for i := range r.Body {
		subAtom(&r.Body[i])
	}
}

// replaceMixedApps rewrites every mixed application of the rule, whose
// arguments are all constants by now, into the corresponding derived pure
// symbol.
func (e *eliminator) replaceMixedApps(r *ast.Rule) error {
	rep := func(a *ast.Atom) error {
		if a.FT == nil {
			return nil
		}
		for i, app := range a.FT.Apps {
			if len(app.Args) == 0 {
				continue
			}
			consts := make([]symbols.ConstID, len(app.Args))
			for j, d := range app.Args {
				if d.IsVar() {
					return fmt.Errorf("internal: mixed argument still variable after instantiation")
				}
				consts[j] = d.Const
			}
			a.FT.Apps[i] = ast.FApp{Fn: e.pureName(app.Fn, consts)}
		}
		return nil
	}
	if err := rep(&r.Head); err != nil {
		return err
	}
	for i := range r.Body {
		if err := rep(&r.Body[i]); err != nil {
			return err
		}
	}
	return nil
}

// rule returns all pure instances of r.
func (e *eliminator) rule(r ast.Rule) ([]ast.Rule, error) {
	vars := mixedVars(&r)
	var out []ast.Rule
	var rec func(cur ast.Rule, rest []symbols.VarID) error
	rec = func(cur ast.Rule, rest []symbols.VarID) error {
		if len(rest) == 0 {
			inst := cur.Clone()
			if err := e.replaceMixedApps(&inst); err != nil {
				return err
			}
			out = append(out, inst)
			return nil
		}
		for _, c := range e.domain {
			next := cur.Clone()
			substituteDataVar(&next, rest[0], c)
			if err := rec(next, rest[1:]); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(r, vars); err != nil {
		return nil, err
	}
	return out, nil
}
