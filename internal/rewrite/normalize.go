// Package rewrite implements the program transformations of sections 2.4
// and the Appendix: rule normalization, elimination of mixed function
// symbols, and the preparation pipeline that the evaluation engine and the
// specification builders run on.
//
// Normalization rewrites an arbitrary set of functional rules into an
// equivalent set of normal rules: each rule has at most one functional
// variable and every non-ground functional term in it has depth at most one
// above the variable. The construction introduces fresh helper predicates:
//
//   - Deep body atoms P(f_d(...f_1(s)...), x̄) are lowered one application
//     at a time through fresh predicates, so the main rule joins everything
//     at the variable itself.
//   - A deep head term is raised one application at a time from a fresh
//     predicate derived at the variable.
//   - Atoms over additional functional variables are projected onto the
//     data variables they share with the rest of the rule through fresh
//     "exists" predicates, which is sound because the extra variable is
//     existentially quantified in the body.
//
// Every generated rule is normal and range-restricted, so normalization
// preserves domain-independence, and the transformed program is equivalent
// to the original with respect to the original predicates.
package rewrite

import (
	"fmt"
	"sort"

	"funcdb/internal/ast"
	"funcdb/internal/symbols"
)

// Normalize returns a program whose rules are all normal and which is
// equivalent to p on p's predicates. Facts are copied unchanged (ground
// terms of any depth are allowed in normal rules). The returned program
// shares p's symbol table.
func Normalize(p *ast.Program) (*ast.Program, error) {
	out := &ast.Program{Tab: p.Tab}
	out.Facts = make([]ast.Atom, len(p.Facts))
	for i, f := range p.Facts {
		out.Facts[i] = f.Clone()
	}
	n := &normalizer{tab: p.Tab, out: out}
	for i := range p.Rules {
		if err := n.rule(p.Rules[i].Clone()); err != nil {
			return nil, fmt.Errorf("rule %s: %w", p.Rules[i].Format(p.Tab), err)
		}
	}
	return out, nil
}

type normalizer struct {
	tab *symbols.Table
	out *ast.Program
}

func (n *normalizer) emit(r ast.Rule) { n.out.Rules = append(n.out.Rules, r) }

// rule normalizes one rule, possibly emitting helper rules.
func (n *normalizer) rule(r ast.Rule) error {
	if !r.IsRangeRestricted() {
		return fmt.Errorf("not range-restricted (domain-dependent)")
	}
	r, err := n.splitFunctionalVars(r)
	if err != nil {
		return err
	}
	r = n.lowerDeepBodyAtoms(r)
	r = n.raiseDeepHead(r)
	n.emit(r)
	return nil
}

// mainVar picks the functional variable the rule is normalized around: the
// head's, if the head is functional with a variable base, else the first
// functional variable.
func mainVar(r *ast.Rule) symbols.VarID {
	if r.Head.FT != nil && r.Head.FT.HasVarBase() {
		return r.Head.FT.Base
	}
	vs := r.FunctionalVars()
	if len(vs) == 0 {
		return symbols.NoVar
	}
	return vs[0]
}

// dataVarsOfAtom collects the non-functional variables of a.
func dataVarsOfAtom(a *ast.Atom, into map[symbols.VarID]bool) {
	for _, d := range a.Args {
		if d.IsVar() {
			into[d.Var] = true
		}
	}
	if a.FT != nil {
		for _, app := range a.FT.Apps {
			for _, d := range app.Args {
				if d.IsVar() {
					into[d.Var] = true
				}
			}
		}
	}
}

func sortedVars(m map[symbols.VarID]bool) []symbols.VarID {
	out := make([]symbols.VarID, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// splitFunctionalVars projects every functional variable other than the
// main one out of the rule through fresh exists-predicates, recursively
// normalizing the projection rules.
func (n *normalizer) splitFunctionalVars(r ast.Rule) (ast.Rule, error) {
	vars := r.FunctionalVars()
	if len(vars) <= 1 {
		return r, nil
	}
	main := mainVar(&r)
	// Group body atoms by their functional variable.
	groups := make(map[symbols.VarID][]ast.Atom)
	var rest []ast.Atom
	for _, a := range r.Body {
		if a.FT != nil && a.FT.HasVarBase() && a.FT.Base != main {
			v := a.FT.Base
			groups[v] = append(groups[v], a)
			continue
		}
		rest = append(rest, a)
	}
	var groupVars []symbols.VarID
	for v := range groups {
		groupVars = append(groupVars, v)
	}
	sort.Slice(groupVars, func(i, j int) bool { return groupVars[i] < groupVars[j] })

	// Data variables of the remainder of the rule (head + kept atoms).
	outside := make(map[symbols.VarID]bool)
	dataVarsOfAtom(&r.Head, outside)
	for i := range rest {
		dataVarsOfAtom(&rest[i], outside)
	}
	// Variables shared among two groups also need to flow through the
	// exists-predicates.
	seenIn := make(map[symbols.VarID]int)
	for _, v := range groupVars {
		local := make(map[symbols.VarID]bool)
		for i := range groups[v] {
			dataVarsOfAtom(&groups[v][i], local)
		}
		for dv := range local {
			seenIn[dv]++
		}
	}

	for _, v := range groupVars {
		group := groups[v]
		local := make(map[symbols.VarID]bool)
		for i := range group {
			dataVarsOfAtom(&group[i], local)
		}
		shared := make(map[symbols.VarID]bool)
		for dv := range local {
			if outside[dv] || seenIn[dv] > 1 {
				shared[dv] = true
			}
		}
		args := sortedVars(shared)
		ex := n.tab.FreshPred("Ex", len(args), false)
		head := ast.Atom{Pred: ex}
		for _, dv := range args {
			head.Args = append(head.Args, ast.V(dv))
		}
		// The projection rule has one functional variable (v); normalize it
		// recursively in case its atoms are deep.
		if err := n.rule(ast.Rule{Head: head, Body: group}); err != nil {
			return ast.Rule{}, err
		}
		rest = append(rest, head.Clone())
	}
	r.Body = rest
	return r, nil
}

// chainVars returns the data variables occurring in apps[lo:hi].
func chainVars(apps []ast.FApp, lo, hi int) map[symbols.VarID]bool {
	m := make(map[symbols.VarID]bool)
	for i := lo; i < hi; i++ {
		for _, d := range apps[i].Args {
			if d.IsVar() {
				m[d.Var] = true
			}
		}
	}
	return m
}

// excessDepth returns how many applications of t exceed the normal-form
// budget: at most one application above a variable base, or one above the
// ground prefix for terms with a constant base.
func excessDepth(t *ast.FTerm) int {
	if t == nil {
		return 0
	}
	var budget int
	if t.HasVarBase() {
		budget = 1
	} else {
		if t.IsGround() {
			return 0 // ground terms of any depth are normal
		}
		budget = t.GroundPrefixDepth() + 1
	}
	if d := t.Depth(); d > budget {
		return d - budget
	}
	return 0
}

// lowerDeepBodyAtoms replaces every too-deep body atom by a fresh predicate
// at the rule's variable (or ground prefix), emitting one peel rule per
// application removed. Each peel rule
//
//	L_j(f_j(U, z̄_j), ȳ_j) -> L_{j-1}(U, ȳ_j ∪ vars(z̄_j))
//
// is normal and range-restricted, and L_0 holds of exactly the instances
// the original atom held of.
func (n *normalizer) lowerDeepBodyAtoms(r ast.Rule) ast.Rule {
	for bi := range r.Body {
		a := &r.Body[bi]
		excess := excessDepth(a.FT)
		if excess == 0 {
			continue
		}
		ft := a.FT
		keep := ft.Depth() - excess // innermost applications that may remain

		// Carried data arguments: the atom's own args plus, progressively,
		// the variables of peeled applications.
		carried := append([]ast.DTerm(nil), a.Args...)
		curPred := a.Pred
		for j := ft.Depth(); j > keep; j-- {
			app := ft.Apps[j-1]
			u := n.tab.FreshVar("U")
			// Pattern: curPred(app(U, args...), carried...)
			pat := ast.FVar(u).Apply(app.Fn, app.Args...)
			bodyAtom := ast.Atom{Pred: curPred, FT: pat, Args: carried}

			nextCarried := append([]ast.DTerm(nil), carried...)
			seen := make(map[symbols.VarID]bool)
			for _, d := range carried {
				if d.IsVar() {
					seen[d.Var] = true
				}
			}
			for _, d := range app.Args {
				if d.IsVar() && !seen[d.Var] {
					seen[d.Var] = true
					nextCarried = append(nextCarried, d)
				}
			}
			lo := n.tab.FreshPred("Lo", len(nextCarried), true)
			headAtom := ast.Atom{Pred: lo, FT: ast.FVar(u), Args: nextCarried}
			n.emit(ast.Rule{Head: headAtom, Body: []ast.Atom{bodyAtom}})
			curPred = lo
			carried = nextCarried
		}
		// Replace the original atom by the lowered one at the remaining term.
		*a = ast.Atom{
			Pred: curPred,
			FT:   &ast.FTerm{Base: ft.Base, Apps: append([]ast.FApp(nil), ft.Apps[:keep]...)},
			Args: carried,
		}
	}
	return r
}

// raiseDeepHead rewrites a rule with a too-deep head term into a seed rule
// deriving a fresh predicate at the shallow end plus one raise rule per
// extra application.
func (n *normalizer) raiseDeepHead(r ast.Rule) ast.Rule {
	excess := excessDepth(r.Head.FT)
	if excess == 0 {
		return r
	}
	ft := r.Head.FT
	keep := ft.Depth() - excess

	// All data variables the raise chain and the final head need.
	needed := make(map[symbols.VarID]bool)
	for _, d := range r.Head.Args {
		if d.IsVar() {
			needed[d.Var] = true
		}
	}
	for v := range chainVars(ft.Apps, keep, ft.Depth()) {
		needed[v] = true
	}
	carried := sortedVars(needed)
	carriedTerms := make([]ast.DTerm, len(carried))
	for i, v := range carried {
		carriedTerms[i] = ast.V(v)
	}

	// Seed rule: original body derives R_0 at the shallow prefix.
	r0 := n.tab.FreshPred("Ra", len(carried), true)
	seedHead := ast.Atom{
		Pred: r0,
		FT:   &ast.FTerm{Base: ft.Base, Apps: append([]ast.FApp(nil), ft.Apps[:keep]...)},
		Args: carriedTerms,
	}
	seed := ast.Rule{Head: seedHead, Body: r.Body}

	// Raise rules: R_i(U, ȳ) -> R_{i+1}(f(U, z̄), ȳ), final one derives the
	// original head predicate.
	cur := r0
	for j := keep; j < ft.Depth(); j++ {
		app := ft.Apps[j]
		u := n.tab.FreshVar("U")
		body := ast.Atom{Pred: cur, FT: ast.FVar(u), Args: carriedTerms}
		var head ast.Atom
		if j == ft.Depth()-1 {
			head = ast.Atom{Pred: r.Head.Pred, FT: ast.FVar(u).Apply(app.Fn, app.Args...), Args: r.Head.Args}
		} else {
			next := n.tab.FreshPred("Ra", len(carried), true)
			head = ast.Atom{Pred: next, FT: ast.FVar(u).Apply(app.Fn, app.Args...), Args: carriedTerms}
			cur = next
		}
		n.emit(ast.Rule{Head: head, Body: []ast.Atom{body}})
	}
	return seed
}
