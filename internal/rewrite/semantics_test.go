package rewrite

import (
	"testing"

	"funcdb/internal/ast"
	"funcdb/internal/facts"
	"funcdb/internal/fixpoint"
	"funcdb/internal/parser"
	"funcdb/internal/symbols"
	"funcdb/internal/term"
)

// TestNormalizationPreservesSemantics checks the Appendix claim end to end:
// the normalized program is equivalent to the original with respect to the
// original predicates. Both sides are evaluated bottom-up to a depth bound
// (the programs are upward-only, so truncation is exact there) and compared
// on every original-predicate fact.
func TestNormalizationPreservesSemantics(t *testing.T) {
	sources := []string{
		// The Appendix rule, with a seed and generators so it can fire.
		`
@functional P/1.
@functional P1/1.
P(0).
W(c1).
W(c2).
P(S), W(X) -> P1(g(f(S), X)).
P(S) -> P(f(S)).
`,
		// Deep body atoms.
		`
@functional P/1.
@functional Q/1.
P(0).
P(S) -> P(f(S)).
P(g(f(S))) -> Q(S).
P(S) -> P(g(S)).
`,
		// Extra functional variables with shared data.
		`
@functional A/2.
@functional B/2.
@functional R/2.
A(0, x).
B(0, x).
A(S, X), B(S2, X) -> R(S, X).
A(S, X) -> A(f(S), X).
`,
		// Depth-3 head.
		`
@functional P/1.
@functional Deep/1.
P(0).
P(S) -> Deep(f(g(f(S)))).
`,
	}
	const depth = 5
	for _, src := range sources {
		orig := parser.MustParse(src).Program
		if err := orig.Validate(); err != nil {
			t.Fatalf("Validate: %v", err)
		}
		norm, err := Normalize(orig)
		if err != nil {
			t.Fatalf("Normalize: %v\n%s", err, src)
		}
		origPure, err := EliminateMixed(orig)
		if err != nil {
			t.Fatalf("EliminateMixed(orig): %v", err)
		}
		normPure, err := EliminateMixed(norm)
		if err != nil {
			t.Fatalf("EliminateMixed(norm): %v", err)
		}

		u := term.NewUniverse()
		w := facts.NewWorld()
		resOrig, err := fixpoint.Eval(origPure, u, w, fixpoint.Options{MaxDepth: depth, MaxFacts: 500000})
		if err != nil {
			t.Fatalf("Eval(orig): %v", err)
		}
		resNorm, err := fixpoint.Eval(normPure, u, w, fixpoint.Options{MaxDepth: depth, MaxFacts: 500000})
		if err != nil {
			t.Fatalf("Eval(norm): %v", err)
		}

		origPreds := make(map[symbols.PredID]bool)
		orig.Atoms(func(a *ast.Atom) { origPreds[a.Pred] = true })

		// Both directions, original predicates only.
		for _, p := range resOrig.Store.FnPreds() {
			if !origPreds[p] {
				continue
			}
			resOrig.Store.ForEachFn(p, func(tm term.Term, tu facts.TupleID) {
				if !resNorm.Store.HasFn(p, tm, w.TupleArgs(tu)) {
					t.Errorf("normalized program lost %s at %s in:\n%s",
						orig.Tab.PredName(p), u.CompactString(tm, orig.Tab), src)
				}
			})
		}
		for _, p := range resNorm.Store.FnPreds() {
			if !origPreds[p] {
				continue
			}
			resNorm.Store.ForEachFn(p, func(tm term.Term, tu facts.TupleID) {
				if !resOrig.Store.HasFn(p, tm, w.TupleArgs(tu)) {
					t.Errorf("normalized program over-derives %s at %s in:\n%s",
						orig.Tab.PredName(p), u.CompactString(tm, orig.Tab), src)
				}
			})
		}
	}
}
