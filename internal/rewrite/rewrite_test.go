package rewrite

import (
	"strings"
	"testing"

	"funcdb/internal/ast"
	"funcdb/internal/parser"
)

const listsSrc = `
P(a).
P(b).
P(X) -> Member(ext(0, X), X).
P(Y), Member(S, X) -> Member(ext(S, Y), Y).
P(Y), Member(S, X) -> Member(ext(S, Y), X).
`

// TestEliminateListsMatchesPaper reproduces the section 3 transformation of
// the list-processing program: two constants a, b turn the three mixed
// rules into six pure ones over ext'a and ext'b.
func TestEliminateListsMatchesPaper(t *testing.T) {
	p := parser.MustParse(listsSrc).Program
	out, err := EliminateMixed(p)
	if err != nil {
		t.Fatalf("EliminateMixed: %v", err)
	}
	if len(out.Rules) != 6 {
		t.Fatalf("got %d rules, want 6:\n%s", len(out.Rules), out.Format())
	}
	if out.HasMixed() {
		t.Fatalf("mixed symbols remain:\n%s", out.Format())
	}
	text := out.Format()
	for _, want := range []string{
		"P(a) -> Member(ext'a(0), a).",
		"P(b) -> Member(ext'b(0), b).",
		"P(a), Member(S, X) -> Member(ext'a(S), a).",
		"P(b), Member(S, X) -> Member(ext'b(S), b).",
		"P(a), Member(S, X) -> Member(ext'a(S), X).",
		"P(b), Member(S, X) -> Member(ext'b(S), X).",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing transformed rule %q in:\n%s", want, text)
		}
	}
	if !out.IsNormal() {
		t.Errorf("elimination must preserve normality")
	}
}

func TestEliminateGroundFact(t *testing.T) {
	src := `
Member(ext(0, a), a).
Member(S, X) -> Member(ext(S, b), X).
`
	p := parser.MustParse(src).Program
	out, err := EliminateMixed(p)
	if err != nil {
		t.Fatalf("EliminateMixed: %v", err)
	}
	if len(out.Facts) != 1 {
		t.Fatalf("facts = %d", len(out.Facts))
	}
	if got := out.Facts[0].Format(p.Tab); got != "Member(ext'a(0), a)" {
		t.Fatalf("fact = %q", got)
	}
}

// TestNormalizeAppendixRule normalizes the Appendix rule
// P(S), W(X) -> P1(g(f(S), X)). The paper's construction introduces helper
// predicates to break the depth-2 head; ours does the same with a raise
// chain. The output must be normal and mention only normal terms.
func TestNormalizeAppendixRule(t *testing.T) {
	src := `
@functional P/1.
@functional P1/1.
P(S), W(X) -> P1(g(f(S), X)).
`
	p := parser.MustParse(src).Program
	out, err := Normalize(p)
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if !out.IsNormal() {
		t.Fatalf("output not normal:\n%s", out.Format())
	}
	if len(out.Rules) != 2 {
		t.Fatalf("got %d rules, want 2 (seed + raise):\n%s", len(out.Rules), out.Format())
	}
	// The raise rule rebuilds the original head predicate.
	found := false
	for i := range out.Rules {
		if out.Rules[i].Head.Pred == p.Rules[0].Head.Pred {
			found = true
		}
	}
	if !found {
		t.Fatalf("no rule derives the original head predicate:\n%s", out.Format())
	}
}

func TestNormalizeDeepBody(t *testing.T) {
	src := `
@functional P/1.
@functional Q/1.
P(g(f(S))) -> Q(S).
`
	p := parser.MustParse(src).Program
	out, err := Normalize(p)
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if !out.IsNormal() {
		t.Fatalf("output not normal:\n%s", out.Format())
	}
	if len(out.Rules) != 2 {
		t.Fatalf("got %d rules, want 2 (peel + main):\n%s", len(out.Rules), out.Format())
	}
}

func TestNormalizeExtraFunctionalVariables(t *testing.T) {
	src := `
@functional P/1.
@functional Q/2.
@functional R/1.
P(S), Q(S2, X) -> R(S).
`
	p := parser.MustParse(src).Program
	out, err := Normalize(p)
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if !out.IsNormal() {
		t.Fatalf("output not normal:\n%s", out.Format())
	}
	// One projection rule (Q(S2, X) -> Ex) and the rewritten main rule.
	if len(out.Rules) != 2 {
		t.Fatalf("got %d rules, want 2:\n%s", len(out.Rules), out.Format())
	}
	for i := range out.Rules {
		if got := len(out.Rules[i].FunctionalVars()); got > 1 {
			t.Fatalf("rule still has %d functional variables: %s",
				got, out.Rules[i].Format(p.Tab))
		}
	}
}

// TestNormalizeSharedDataVarAcrossGroups checks that a data variable shared
// between an extra functional variable's group and the main rule flows
// through the exists-predicate.
func TestNormalizeSharedDataVarAcrossGroups(t *testing.T) {
	src := `
@functional P/1.
@functional Q/2.
@functional R/2.
P(S), Q(S2, X) -> R(S, X).
`
	p := parser.MustParse(src).Program
	out, err := Normalize(p)
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if !out.IsNormal() {
		t.Fatalf("not normal:\n%s", out.Format())
	}
	// The projection predicate must carry X (arity 1).
	carried := false
	for i := range out.Rules {
		h := out.Rules[i].Head
		if p.Tab.PredName(h.Pred) != "R" && h.FT == nil && len(h.Args) == 1 {
			carried = true
		}
	}
	if !carried {
		t.Fatalf("shared variable not carried through projection:\n%s", out.Format())
	}
	if !out.IsDomainIndependent() {
		t.Fatalf("normalization broke range-restriction:\n%s", out.Format())
	}
}

func TestNormalizeDeepMixedCombination(t *testing.T) {
	src := `
@functional Mem/2.
Mem(S, X), D(Y) -> Mem(cons(cons(S, X), Y), Y).
D(a). D(b).
`
	p := parser.MustParse(src).Program
	norm, err := Normalize(p)
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if !norm.IsNormal() {
		t.Fatalf("not normal:\n%s", norm.Format())
	}
	if !norm.IsDomainIndependent() {
		t.Fatalf("not range-restricted:\n%s", norm.Format())
	}
	pure, err := EliminateMixed(norm)
	if err != nil {
		t.Fatalf("EliminateMixed: %v", err)
	}
	if pure.HasMixed() || !pure.IsNormal() {
		t.Fatalf("pipeline output broken:\n%s", pure.Format())
	}
}

func TestNormalizeRejectsDomainDependent(t *testing.T) {
	p := ast.NewProgram()
	fp := p.Tab.Pred("P", 0, true)
	g := p.Tab.Func("g", 0)
	vS := p.Tab.Var("S")
	vW := p.Tab.Var("W")
	p.Rules = append(p.Rules, ast.Rule{
		Head: ast.Atom{Pred: fp, FT: ast.FVar(vW).Apply(g)},
		Body: []ast.Atom{{Pred: fp, FT: ast.FVar(vS)}},
	})
	if _, err := Normalize(p); err == nil {
		t.Fatalf("domain-dependent rule accepted")
	}
}

func TestPrepareMeetings(t *testing.T) {
	src := `
Meets(0, tony).
Next(tony, jan).
Next(jan, tony).
Meets(T, X), Next(X, Y) -> Meets(T+1, Y).
`
	p := parser.MustParse(src).Program
	prep, err := Prepare(p)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if !prep.Temporal {
		t.Fatalf("meetings is temporal")
	}
	if prep.C != 0 || prep.SeedDepth != 0 {
		t.Fatalf("C=%d seed=%d, want 0, 0", prep.C, prep.SeedDepth)
	}
	if len(prep.Funcs) != 1 {
		t.Fatalf("alphabet = %d symbols, want 1 (succ)", len(prep.Funcs))
	}
	meets, _ := p.Tab.LookupPred("Meets", 1, true)
	if !prep.OriginalPreds[meets] {
		t.Fatalf("Meets missing from OriginalPreds")
	}
}

func TestPrepareLists(t *testing.T) {
	p := parser.MustParse(listsSrc).Program
	prep, err := Prepare(p)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if prep.Temporal {
		t.Fatalf("lists is not temporal")
	}
	if prep.C != 0 || prep.SeedDepth != 1 {
		t.Fatalf("C=%d seed=%d, want 0, 1", prep.C, prep.SeedDepth)
	}
	if len(prep.Funcs) != 2 {
		t.Fatalf("alphabet = %d symbols, want 2 (ext'a, ext'b)", len(prep.Funcs))
	}
}

func TestPrepareRejectsDomainDependent(t *testing.T) {
	src := `
@functional P/1.
R(a).
P(S) -> P(g(S, W)).
`
	p := parser.MustParse(src).Program
	if _, err := Prepare(p); err == nil {
		t.Fatalf("domain-dependent program accepted")
	}
}
