package rewrite

import (
	"fmt"

	"funcdb/internal/ast"
	"funcdb/internal/symbols"
)

// Prepared is the output of the preparation pipeline: a validated,
// normalized, pure (mixed-free) program ready for evaluation, together with
// the metadata the specification builders need.
type Prepared struct {
	// Program is the normalized, mixed-free program. It shares the
	// original's symbol table.
	Program *ast.Program
	// Original is the program Prepare was given.
	Original *ast.Program
	// OriginalPreds holds the predicates of the original program; the
	// helper predicates introduced by normalization are excluded, and
	// specifications and answers are restricted to this set.
	OriginalPreds map[symbols.PredID]bool
	// C is the paper's parameter c, computed on the original program: the
	// depth of the largest fully ground functional term (section 2.5).
	C int
	// SeedDepth is the depth at which Algorithm Q seeds its breadth-first
	// exploration: c+1 in general, improved to c for temporal programs
	// (footnote 3 of the paper).
	SeedDepth int
	// Temporal reports whether the original program is temporal: its only
	// function symbol is the successor +1.
	Temporal bool
	// Funcs are the pure function symbols of the prepared program, in a
	// deterministic order. These are the successor alphabet of the
	// quotient automaton.
	Funcs []symbols.FuncID
}

// Prepare validates p, checks domain-independence, normalizes its rules and
// eliminates mixed function symbols. p itself is not modified, but derived
// symbols are interned into its symbol table.
func Prepare(p *ast.Program) (*Prepared, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	for i := range p.Rules {
		if !p.Rules[i].IsRangeRestricted() {
			return nil, fmt.Errorf("rule %s is not range-restricted: the program is domain-dependent and its least fixpoint has no finite specification", p.Rules[i].Format(p.Tab))
		}
	}
	c := p.GroundDepth()
	temporal := p.IsTemporal()

	norm, err := Normalize(p)
	if err != nil {
		return nil, err
	}
	pure, err := EliminateMixed(norm)
	if err != nil {
		return nil, err
	}
	if pure.HasMixed() {
		return nil, fmt.Errorf("internal: mixed symbols survived elimination")
	}
	if !pure.IsNormal() {
		return nil, fmt.Errorf("internal: normalization did not produce normal rules")
	}

	orig := make(map[symbols.PredID]bool)
	p.Atoms(func(a *ast.Atom) { orig[a.Pred] = true })

	seed := c + 1
	if temporal {
		seed = c
	}
	return &Prepared{
		Program:       pure,
		Original:      p,
		OriginalPreds: orig,
		C:             c,
		SeedDepth:     seed,
		Temporal:      temporal,
		Funcs:         pure.FuncsUsed(),
	}, nil
}
