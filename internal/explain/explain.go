// Package explain produces human-readable justifications for membership
// answers computed from a graph specification.
//
// A membership test P(t, ā) runs the paper's Link rules: starting from the
// root, each symbol of t moves along a successor edge. Whenever the edge
// lands on an earlier representative instead of the literal extension, the
// step is justified by one of the ground equations of R (an Algorithm Q
// merge) applied under the remaining context — so the trace doubles as an
// equational proof that t is congruent to its representative, finished by a
// primary-database lookup.
package explain

import (
	"fmt"
	"strings"

	"funcdb/internal/specgraph"
	"funcdb/internal/symbols"
	"funcdb/internal/term"
)

// Step is one Link move.
type Step struct {
	// Symbol applied at this step.
	Symbol symbols.FuncID
	// From and To are representatives before and after the move.
	From, To term.Term
	// Extension is Symbol applied to From; when it differs from To the
	// move used the equation To ~ Extension.
	Extension term.Term
	// Merged reports whether an equation was applied.
	Merged bool
}

// Explanation is the full trace of a membership test.
type Explanation struct {
	Spec *specgraph.Spec
	// Pred, Term and Args are the queried fact.
	Pred symbols.PredID
	Term term.Term
	Args []symbols.ConstID
	// Steps is the Link walk, innermost symbol first.
	Steps []Step
	// Representative is the walk's endpoint.
	Representative term.Term
	// Holds is the verdict: the atom is (not) in the representative's
	// slice.
	Holds bool
}

// Membership runs the Link rules on t and records every step.
func Membership(sp *specgraph.Spec, pred symbols.PredID, t term.Term, args []symbols.ConstID) (*Explanation, error) {
	ex := &Explanation{Spec: sp, Pred: pred, Term: t, Args: args}
	cur := term.Zero
	for _, f := range sp.U.Symbols(t) {
		next, ok := sp.Successor(cur, f)
		if !ok {
			return nil, fmt.Errorf("explain: symbol %v not in the specification's alphabet", f)
		}
		extension := sp.U.Apply(f, cur)
		ex.Steps = append(ex.Steps, Step{
			Symbol:    f,
			From:      cur,
			To:        next,
			Extension: extension,
			Merged:    next != extension,
		})
		cur = next
	}
	ex.Representative = cur
	a := sp.W.Atom(pred, sp.W.Tuple(args))
	ex.Holds = sp.W.StateContains(sp.StateOfRep(cur), a)
	return ex, nil
}

// EquationsUsed returns the distinct ground equations the walk applied, as
// (representative, potential) pairs in first-use order.
func (ex *Explanation) EquationsUsed() [][2]term.Term {
	seen := make(map[[2]term.Term]bool)
	var out [][2]term.Term
	for _, s := range ex.Steps {
		if !s.Merged {
			continue
		}
		pair := [2]term.Term{s.To, s.Extension}
		if !seen[pair] {
			seen[pair] = true
			out = append(out, pair)
		}
	}
	return out
}

// String renders the explanation.
func (ex *Explanation) String() string {
	tab := ex.Spec.Eng.Prep.Program.Tab
	u := ex.Spec.U
	var b strings.Builder
	atom := func(t term.Term) string {
		var a strings.Builder
		a.WriteString(tab.PredName(ex.Pred))
		a.WriteByte('(')
		a.WriteString(u.CompactString(t, tab))
		for _, c := range ex.Args {
			a.WriteString(", ")
			a.WriteString(tab.ConstName(c))
		}
		a.WriteByte(')')
		return a.String()
	}
	fmt.Fprintf(&b, "%s?\n", atom(ex.Term))
	if len(ex.Steps) == 0 {
		b.WriteString("  the term is the root representative 0\n")
	}
	for i, s := range ex.Steps {
		fmt.Fprintf(&b, "  step %d: succ_%s(%s) = %s",
			i+1, tab.FuncName(s.Symbol), u.CompactString(s.From, tab), u.CompactString(s.To, tab))
		if s.Merged {
			fmt.Fprintf(&b, "   [by %s ~ %s]",
				u.CompactString(s.To, tab), u.CompactString(s.Extension, tab))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  representative: %s\n", u.CompactString(ex.Representative, tab))
	if ex.Holds {
		fmt.Fprintf(&b, "  %s ∈ B  ⇒  true\n", atom(ex.Representative))
	} else {
		fmt.Fprintf(&b, "  %s ∉ B  ⇒  false\n", atom(ex.Representative))
	}
	return b.String()
}
