package explain

import (
	"strings"
	"testing"

	"funcdb/internal/congruence"
	"funcdb/internal/engine"
	"funcdb/internal/facts"
	"funcdb/internal/parser"
	"funcdb/internal/rewrite"
	"funcdb/internal/specgraph"
	"funcdb/internal/symbols"
	"funcdb/internal/term"
)

func buildSpec(t *testing.T, src string) *specgraph.Spec {
	t.Helper()
	prog := parser.MustParse(src).Program
	prep, err := rewrite.Prepare(prog)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	eng, err := engine.New(prep, term.NewUniverse(), facts.NewWorld(), engine.Options{})
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	sp, err := specgraph.Build(eng, specgraph.Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return sp
}

func TestExplainMeetings(t *testing.T) {
	sp := buildSpec(t, `
Meets(0, tony).
Next(tony, jan).
Next(jan, tony).
Meets(T, X), Next(X, Y) -> Meets(T+1, Y).
`)
	tab := sp.Eng.Prep.Program.Tab
	meets, _ := tab.LookupPred("Meets", 1, true)
	succ, _ := tab.LookupFunc("succ", 0)
	tony, _ := tab.LookupConst("tony")
	ex, err := Membership(sp, meets, sp.U.Number(4, succ), []symbols.ConstID{tony})
	if err != nil {
		t.Fatalf("Membership: %v", err)
	}
	if !ex.Holds {
		t.Fatalf("Meets(4, tony) should hold")
	}
	if len(ex.Steps) != 4 {
		t.Fatalf("steps = %d, want 4", len(ex.Steps))
	}
	if ex.Representative != sp.U.Number(0, succ) {
		t.Fatalf("representative = %v, want day 0", ex.Representative)
	}
	// Steps 1 is plain (0 -> 1); step 2 merges via 0 ~ 2, and later steps
	// reuse the same two equations.
	if ex.Steps[0].Merged {
		t.Errorf("step 1 should be a plain extension")
	}
	if !ex.Steps[1].Merged {
		t.Errorf("step 2 should apply an equation")
	}
	// The walk alternates 0 -> 1 (plain) and 1 -> 0 [by 0 ~ 2]: only the
	// single lasso equation is ever applied.
	eqs := ex.EquationsUsed()
	if len(eqs) != 1 {
		t.Errorf("equations used = %d, want 1 (0~2)", len(eqs))
	}
	s := ex.String()
	for _, want := range []string{"Meets(4, tony)?", "step 4", "representative: 0", "⇒  true"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q:\n%s", want, s)
		}
	}
}

func TestExplainNegative(t *testing.T) {
	sp := buildSpec(t, `
Even(0).
Even(T) -> Even(T+2).
`)
	tab := sp.Eng.Prep.Program.Tab
	even, _ := tab.LookupPred("Even", 0, true)
	succ, _ := tab.LookupFunc("succ", 0)
	ex, err := Membership(sp, even, sp.U.Number(3, succ), nil)
	if err != nil {
		t.Fatalf("Membership: %v", err)
	}
	if ex.Holds {
		t.Fatalf("Even(3) should not hold")
	}
	if !strings.Contains(ex.String(), "⇒  false") {
		t.Errorf("negative verdict missing:\n%s", ex.String())
	}
}

// TestEquationsUsedAreSound: every equation the explanation cites must
// actually be in Cl(R) — indeed in R itself (up to orientation).
func TestEquationsUsedAreSound(t *testing.T) {
	sp := buildSpec(t, `
P(a).
P(b).
P(X) -> Member(ext(0, X), X).
P(Y), Member(S, X) -> Member(ext(S, Y), Y).
P(Y), Member(S, X) -> Member(ext(S, Y), X).
`)
	tab := sp.Eng.Prep.Program.Tab
	member, _ := tab.LookupPred("Member", 1, true)
	aC, _ := tab.LookupConst("a")
	extA, _ := tab.LookupFunc("ext'a", 0)
	extB, _ := tab.LookupFunc("ext'b", 0)

	var pairs [][2]term.Term
	for _, m := range sp.Merges {
		pairs = append(pairs, [2]term.Term{m.Rep, m.Potential})
	}
	es := congruence.NewEqSpec(sp.U, pairs)
	inR := make(map[[2]term.Term]bool)
	for _, p := range pairs {
		inR[p] = true
	}

	tm := sp.U.ApplyString(term.Zero, extB, extA, extB, extA)
	ex, err := Membership(sp, member, tm, []symbols.ConstID{aC})
	if err != nil {
		t.Fatalf("Membership: %v", err)
	}
	if !ex.Holds {
		t.Fatalf("Member(baba, a) should hold")
	}
	for _, eq := range ex.EquationsUsed() {
		if !inR[eq] {
			t.Errorf("cited equation not in R: %v", eq)
		}
		if !es.Congruent(eq[0], eq[1]) {
			t.Errorf("cited equation not congruent: %v", eq)
		}
	}
	// The full chain is itself a congruence proof: t ~ representative.
	if !es.Congruent(tm, ex.Representative) {
		t.Errorf("term not congruent to its representative")
	}
}

func TestExplainRootTerm(t *testing.T) {
	sp := buildSpec(t, `
Even(0).
Even(T) -> Even(T+2).
`)
	tab := sp.Eng.Prep.Program.Tab
	even, _ := tab.LookupPred("Even", 0, true)
	ex, err := Membership(sp, even, term.Zero, nil)
	if err != nil {
		t.Fatalf("Membership: %v", err)
	}
	if !ex.Holds || len(ex.Steps) != 0 {
		t.Errorf("Even(0): holds=%v steps=%d", ex.Holds, len(ex.Steps))
	}
	if !strings.Contains(ex.String(), "root representative") {
		t.Errorf("root case not mentioned:\n%s", ex.String())
	}
}
