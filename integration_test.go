// Cross-representation integration tests: on randomized workloads, every
// representation of a least fixpoint — the graph specification, the
// equational/canonical form, the minimized automaton, the serialized
// standalone document, and (where it is exact) depth-bounded bottom-up
// evaluation — must answer every membership question identically.
package funcdb_test

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"funcdb"
	"funcdb/internal/datagen"
	"funcdb/internal/facts"
	"funcdb/internal/fixpoint"
	"funcdb/internal/rewrite"
	"funcdb/internal/symbols"
	"funcdb/internal/term"
)

// answerers builds every representation of a program's fixpoint.
type answerers struct {
	db         *funcdb.Database
	spec       *funcdb.GraphSpec
	form       *funcdb.CanonicalForm
	min        *funcdb.Minimized
	standalone *funcdb.Standalone
}

func buildAll(t *testing.T, src string) *answerers {
	t.Helper()
	db, err := funcdb.Open(src, funcdb.Options{})
	if err != nil {
		t.Fatalf("Open: %v\n%s", err, src)
	}
	spec, err := db.Graph()
	if err != nil {
		t.Fatalf("Graph: %v", err)
	}
	form, err := db.Canonical()
	if err != nil {
		t.Fatalf("Canonical: %v", err)
	}
	min, err := db.Minimized()
	if err != nil {
		t.Fatalf("Minimized: %v", err)
	}
	var buf bytes.Buffer
	if err := db.Export(&buf); err != nil {
		t.Fatalf("Export: %v", err)
	}
	doc, err := funcdb.ReadSpec(&buf)
	if err != nil {
		t.Fatalf("ReadSpec: %v", err)
	}
	standalone, err := funcdb.LoadSpec(doc)
	if err != nil {
		t.Fatalf("LoadSpec: %v", err)
	}
	return &answerers{db: db, spec: spec, form: form, min: min, standalone: standalone}
}

// checkAgreement walks every term to the given depth and compares all
// representations on every atom appearing anywhere in the primary database.
func checkAgreement(t *testing.T, a *answerers, depth int, label string) {
	t.Helper()
	sp := a.spec
	w := sp.W
	tab := a.db.Tab()
	atoms := make(map[facts.AtomID]bool)
	for _, rep := range sp.Reps {
		for _, at := range sp.Slice(rep) {
			atoms[at] = true
		}
	}
	// Mirror of the term under the standalone universe. Large alphabets
	// would make a full walk to the target depth explode, so cap the total
	// number of visited terms.
	budget := 2000
	var walk func(tm, standTm term.Term)
	walk = func(tm, standTm term.Term) {
		if budget <= 0 {
			return
		}
		budget--
		for at := range atoms {
			pred := w.AtomPred(at)
			args := w.TupleArgs(w.AtomTuple(at))
			want, err := sp.Has(pred, tm, args)
			if err != nil {
				t.Fatalf("%s: spec.Has: %v", label, err)
			}
			if got := a.form.Has(pred, tm, args); got != want {
				t.Errorf("%s: canonical disagrees at %s", label, sp.U.CompactString(tm, tab))
			}
			if got, err := a.min.Has(pred, tm, args); err != nil || got != want {
				t.Errorf("%s: minimized disagrees at %s (err %v)", label, sp.U.CompactString(tm, tab), err)
			}
			strArgs := make([]string, len(args))
			for i, c := range args {
				strArgs[i] = tab.ConstName(c)
			}
			if got, err := a.standalone.Has(tab.PredName(pred), standTm, strArgs...); err != nil || got != want {
				t.Errorf("%s: standalone disagrees at %s (err %v)", label, sp.U.CompactString(tm, tab), err)
			}
			if got := a.standalone.HasViaCongruence(tab.PredName(pred), standTm, strArgs...); got != want {
				t.Errorf("%s: standalone congruence disagrees at %s", label, sp.U.CompactString(tm, tab))
			}
		}
		if sp.U.Depth(tm) >= depth {
			return
		}
		for _, f := range sp.Alphabet {
			sf, ok := a.standalone.Tab().LookupFunc(tab.FuncName(f), 0)
			if !ok {
				t.Fatalf("%s: standalone lost symbol %s", label, tab.FuncName(f))
			}
			walk(sp.U.Apply(f, tm), a.standalone.Universe().Apply(sf, standTm))
		}
	}
	walk(term.Zero, term.Zero)
}

func TestAllRepresentationsAgreeOnExamples(t *testing.T) {
	for name, src := range map[string]string{
		"calendar": datagen.CalendarSrc(3),
		"subsets":  datagen.SubsetsSrc(3),
		"robot":    datagen.RobotSrc(4),
		"chain":    datagen.ChainSrc(5),
	} {
		a := buildAll(t, src)
		checkAgreement(t, a, 5, name)
	}
}

func TestAllRepresentationsAgreeOnRandomAutomata(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		src := datagen.RandomAutomatonSrc(4, 2, seed)
		a := buildAll(t, src)
		checkAgreement(t, a, 5, fmt.Sprintf("automaton-seed-%d", seed))
	}
}

// TestAllRepresentationsAgreeOnRandomBidi stresses the engine's excursion
// summarization with rules flowing in both directions over two symbols.
func TestAllRepresentationsAgreeOnRandomBidi(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		src := datagen.RandomBidiSrc(3, 2, seed)
		a := buildAll(t, src)
		checkAgreement(t, a, 5, fmt.Sprintf("bidi-seed-%d", seed))
	}
}

// TestEngineContainsTruncatedFixpointBidi: soundness direction against the
// depth-bounded evaluator on bidirectional programs, where truncation is a
// lower bound on the true fixpoint.
func TestEngineContainsTruncatedFixpointBidi(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		prog := datagen.RandomBidi(3, 2, seed)
		prep, err := rewrite.Prepare(prog)
		if err != nil {
			t.Fatalf("Prepare: %v", err)
		}
		db, err := funcdb.FromProgram(prog, funcdb.Options{})
		if err != nil {
			t.Fatalf("FromProgram: %v", err)
		}
		spec, err := db.Graph()
		if err != nil {
			t.Fatalf("Graph: %v", err)
		}
		u := term.NewUniverse()
		w := facts.NewWorld()
		ref, err := fixpoint.Eval(prep.Program, u, w, fixpoint.Options{MaxDepth: 7, MaxFacts: 200000})
		if err != nil {
			t.Fatalf("fixpoint: %v", err)
		}
		for _, p := range ref.Store.FnPreds() {
			if !prep.OriginalPreds[p] {
				continue
			}
			ref.Store.ForEachFn(p, func(tm term.Term, tu facts.TupleID) {
				tm2 := db.Universe().ApplyString(funcdb.Zero, u.Symbols(tm)...)
				got, err := spec.Has(p, tm2, w.TupleArgs(tu))
				if err != nil {
					t.Fatalf("Has: %v", err)
				}
				if !got {
					t.Errorf("seed %d: engine missing %s at %s",
						seed, prog.Tab.PredName(p), u.CompactString(tm, prog.Tab))
				}
			})
		}
	}
}

func TestAllRepresentationsAgreeOnRandomTemporal(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		src := datagen.RandomTemporalSrc(3, seed)
		a := buildAll(t, src)
		checkAgreement(t, a, 8, fmt.Sprintf("temporal-seed-%d", seed))
	}
}

// TestEngineContainsTruncatedFixpoint: the exact engine's model must
// contain everything a depth-bounded evaluation derives, even on random
// temporal programs with downward rules (where truncation is not exact in
// the other direction).
func TestEngineContainsTruncatedFixpoint(t *testing.T) {
	for seed := int64(0); seed < 16; seed++ {
		prog := datagen.RandomTemporal(4, seed)
		prep, err := rewrite.Prepare(prog)
		if err != nil {
			t.Fatalf("Prepare: %v", err)
		}
		db, err := funcdb.FromProgram(prog, funcdb.Options{})
		if err != nil {
			t.Fatalf("FromProgram: %v", err)
		}
		spec, err := db.Graph()
		if err != nil {
			t.Fatalf("Graph: %v", err)
		}
		u := term.NewUniverse()
		w := facts.NewWorld()
		ref, err := fixpoint.Eval(prep.Program, u, w, fixpoint.Options{MaxDepth: 12, MaxFacts: 100000})
		if err != nil {
			t.Fatalf("fixpoint: %v", err)
		}
		tab := prog.Tab
		for _, p := range ref.Store.FnPreds() {
			if !prep.OriginalPreds[p] {
				continue
			}
			ref.Store.ForEachFn(p, func(tm term.Term, tu facts.TupleID) {
				// Re-intern tm in the db's universe via its symbols.
				syms := u.Symbols(tm)
				tm2 := db.Universe().ApplyString(funcdb.Zero, mapSyms(tab, db, u, syms)...)
				got, err := spec.Has(p, tm2, w.TupleArgs(tu))
				if err != nil {
					t.Fatalf("Has: %v", err)
				}
				if !got {
					t.Errorf("seed %d: engine missing %s at depth %d",
						seed, tab.PredName(p), u.Depth(tm))
				}
			})
		}
	}
}

// mapSyms translates symbol ids between universes sharing one table. The
// table is shared (FromProgram uses prog.Tab), so this is the identity, but
// keeping it explicit guards against future divergence.
func mapSyms(tab *symbols.Table, db *funcdb.Database, u *term.Universe, syms []symbols.FuncID) []symbols.FuncID {
	return syms
}

// TestUpOnlyTruncationIsExact: for upward-only random automata, truncated
// evaluation at depth D agrees exactly with the engine on all terms to D.
func TestUpOnlyTruncationIsExact(t *testing.T) {
	const depth = 6
	for seed := int64(20); seed < 32; seed++ {
		prog := datagen.RandomAutomaton(4, 2, seed)
		prep, err := rewrite.Prepare(prog)
		if err != nil {
			t.Fatalf("Prepare: %v", err)
		}
		db, err := funcdb.FromProgram(prog, funcdb.Options{})
		if err != nil {
			t.Fatalf("FromProgram: %v", err)
		}
		spec, err := db.Graph()
		if err != nil {
			t.Fatalf("Graph: %v", err)
		}
		u := term.NewUniverse()
		w := facts.NewWorld()
		ref, err := fixpoint.Eval(prep.Program, u, w, fixpoint.Options{MaxDepth: depth, Seminaive: true})
		if err != nil {
			t.Fatalf("fixpoint: %v", err)
		}
		var walk func(tm, refTm term.Term)
		walk = func(tm, refTm term.Term) {
			for p := symbols.PredID(0); int(p) < prog.Tab.NumPreds(); p++ {
				info := prog.Tab.PredInfo(p)
				if !info.Functional || !prep.OriginalPreds[p] {
					continue
				}
				want := ref.Store.HasFn(p, refTm, nil)
				got, err := spec.Has(p, tm, nil)
				if err != nil {
					t.Fatalf("Has: %v", err)
				}
				if got != want {
					t.Errorf("seed %d: %s at depth %d: engine %v, truncation %v",
						seed, info.Name, db.Universe().Depth(tm), got, want)
				}
			}
			if db.Universe().Depth(tm) >= depth {
				return
			}
			for _, f := range prep.Funcs {
				walk(db.Universe().Apply(f, tm), u.Apply(f, refTm))
			}
		}
		walk(funcdb.Zero, term.Zero)
	}
}

// TestLemma32Bound checks the cluster bound of Lemma 3.2 on programs small
// enough for the 2^gsize term to be finite: the measured number of
// representatives never exceeds 1 + m*c + m*2^gsize.
func TestLemma32Bound(t *testing.T) {
	sources := []string{
		"Even(0).\nEven(T) -> Even(T+2).\n",
		datagen.CalendarSrc(2),
		datagen.CalendarSrc(3),
		datagen.SubsetsSrc(2),
	}
	for _, src := range sources {
		db, err := funcdb.Open(src, funcdb.Options{})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		st, err := db.Stats()
		if err != nil {
			t.Fatalf("Stats: %v", err)
		}
		bound := st.Params.CongruenceScopeBound()
		if math.IsInf(bound, 1) {
			t.Fatalf("bound overflowed for a small program: %s", st.Params)
		}
		if float64(st.Reps) > bound {
			t.Errorf("Lemma 3.2 violated: %d representatives > bound %.0f for\n%s",
				st.Reps, bound, src)
		}
	}
}

// TestMinimizationNeverGrows: property over random programs.
func TestMinimizationNeverGrows(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		db, err := funcdb.Open(datagen.RandomTemporalSrc(3, seed), funcdb.Options{})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		spec, err := db.Graph()
		if err != nil {
			t.Fatalf("Graph: %v", err)
		}
		m, err := db.Minimized()
		if err != nil {
			t.Fatalf("Minimized: %v", err)
		}
		if m.NumStates() > len(spec.Reps) {
			t.Errorf("seed %d: minimization grew the automaton: %d > %d",
				seed, m.NumStates(), len(spec.Reps))
		}
	}
}
